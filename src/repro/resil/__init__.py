"""repro.resil — unified resilience policies and fault injection.

The paper claims the middle tier's interactions "are self-recovering and
tolerate failure and restart" (§5.1) and that "compensating actions are
taken if failures occur" (§5.2).  This package turns those claims into
reusable machinery instead of per-call-site heroics:

* :class:`RetryPolicy` — exponential backoff, deterministic seeded
  jitter, retryable/fatal exception classification;
* :class:`CircuitBreaker` — closed/open/half-open with a sliding
  failure-rate window and cooldown;
* :class:`Deadline` — a contextvars-propagated time budget flowing
  web → DM → metadb/PL, so blown requests fail fast instead of queueing;
* :class:`Bulkhead` — semaphore concurrency caps with load shedding;
* :func:`resilient` — compose any subset around a callable;
* :class:`FaultInjector` — named, seeded, probabilistic injection
  points threaded through every tier (see :mod:`repro.resil.faults` for
  the point inventory), so chaos scenarios are reproducible library
  code.

All policies emit to :mod:`repro.obs`: ``resil.retries``,
``resil.breaker.state``/``trips``/``rejections``, ``resil.bulkhead.shed``
and ``resil.faults.injected``.
"""

from .breaker import BreakerOpen, BreakerState, CircuitBreaker, breaker_report
from .bulkhead import Bulkhead, BulkheadFull
from .deadline import Deadline, DeadlineExceeded
from .faults import (
    ConnectionDropped,
    DEFAULT_INJECTOR,
    FaultInjector,
    FaultPoint,
    InjectedFault,
    fire,
    get_default_injector,
    maybe_corrupt,
    resolve_faults,
    set_default_injector,
    use_injector,
)
from .policies import RetryPolicy, TRANSIENT_ERRORS
from .wrapper import resilient

__all__ = [
    "BreakerOpen",
    "BreakerState",
    "breaker_report",
    "Bulkhead",
    "BulkheadFull",
    "CircuitBreaker",
    "ConnectionDropped",
    "DEFAULT_INJECTOR",
    "Deadline",
    "DeadlineExceeded",
    "FaultInjector",
    "FaultPoint",
    "InjectedFault",
    "RetryPolicy",
    "TRANSIENT_ERRORS",
    "fire",
    "get_default_injector",
    "maybe_corrupt",
    "resilient",
    "resolve_faults",
    "set_default_injector",
    "use_injector",
]
