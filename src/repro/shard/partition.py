"""Shard topology: time-range partitions over the metadata catalog.

The catalog is partitioned by observation time, the axis along which a
scientific archive actually grows (one RHESSI observation day after
another) and the axis most page queries constrain.  A :class:`ShardMap`
is an immutable, totally ordered list of half-open ranges
``[low, high)`` covering the whole real line — the first shard's lower
bound and the last shard's upper bound are open, so any start_time
always lands on exactly one shard and "open-ended" predicates still
prune.

Tables fall into three placement classes (:class:`ShardConfig`):

* **partitioned** — rows are placed by a time column (``hle`` and
  ``raw_units`` by ``start_time``);
* **co-partitioned** — rows follow a foreign-key parent so per-shard
  foreign-key checks keep working (``ana`` and ``catalog_members``
  follow their ``hle``; ``views`` follow their ``raw_units``);
* **broadcast** — everything else (users, catalogs, location/ops
  tables) is replicated on every shard, eagerly written and read
  round-robin, so cross-table references hold on any shard.

Maps are immutable: a split builds a new map and the router swaps one
reference, which is what lets readers run unstalled through a split.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Sequence


class ShardError(Exception):
    """A statement cannot be routed under the current shard topology."""


class ShardUnavailable(ShardError):
    """Every shard a statement targets is down or circuit-broken."""

    def __init__(self, message: str, shard_ids: Sequence[int] = ()):
        super().__init__(message)
        self.shard_ids = tuple(shard_ids)


@dataclass(frozen=True)
class ShardSpec:
    """One shard's identity and the half-open time range ``[low, high)``.

    ``low is None`` / ``high is None`` mark the open outer edges of the
    first and last shard.
    """

    shard_id: int
    low: Optional[float] = None
    high: Optional[float] = None

    def covers(self, value: Any) -> bool:
        """True when ``value`` belongs to this shard's range."""
        try:
            if self.low is not None and value < self.low:
                return False
            if self.high is not None and value >= self.high:
                return False
        except TypeError:
            return False
        return True

    def overlaps(self, low: Any, high: Any, low_inclusive: bool,
                 high_inclusive: bool) -> bool:
        """True when the query range can contain a value in ``[low, high)``."""
        try:
            if high is not None and self.low is not None:
                if high < self.low or (high == self.low and not high_inclusive):
                    return False
            if low is not None and self.high is not None:
                # self.high is exclusive: low == self.high can never match.
                if low >= self.high:
                    return False
        except TypeError:
            return False
        return True

    def describe(self) -> str:
        low = "-inf" if self.low is None else f"{self.low:g}"
        high = "+inf" if self.high is None else f"{self.high:g}"
        return f"shard {self.shard_id} [{low}, {high})"


class ShardMap:
    """An immutable, contiguous, totally ordered set of shard ranges."""

    def __init__(self, specs: Sequence[ShardSpec]):
        if not specs:
            raise ShardError("a shard map needs at least one shard")
        ordered = sorted(specs, key=lambda spec: (spec.low is not None, spec.low))
        if ordered[0].low is not None or ordered[-1].high is not None:
            raise ShardError("the first/last shard must have open outer bounds")
        for left, right in zip(ordered, ordered[1:]):
            if left.high != right.low:
                raise ShardError(
                    f"shard ranges must be contiguous: {left.describe()} then "
                    f"{right.describe()}"
                )
        self.specs: tuple[ShardSpec, ...] = tuple(ordered)
        self._by_id = {spec.shard_id: spec for spec in self.specs}
        if len(self._by_id) != len(self.specs):
            raise ShardError("duplicate shard ids in map")

    @classmethod
    def from_boundaries(cls, boundaries: Sequence[float]) -> "ShardMap":
        """N sorted boundary values give N+1 contiguous shards."""
        cuts = sorted(set(boundaries))
        edges = [None, *cuts, None]
        return cls([
            ShardSpec(shard_id, low, high)
            for shard_id, (low, high) in enumerate(zip(edges, edges[1:]))
        ])

    def __len__(self) -> int:
        return len(self.specs)

    def __iter__(self):
        return iter(self.specs)

    def spec(self, shard_id: int) -> ShardSpec:
        try:
            return self._by_id[shard_id]
        except KeyError:
            raise ShardError(f"unknown shard id {shard_id}") from None

    def spec_for_value(self, value: Any) -> ShardSpec:
        """The unique shard owning ``value`` (ranges cover the whole line)."""
        for spec in self.specs:
            if spec.covers(value):
                return spec
        raise ShardError(f"no shard covers partition value {value!r}")

    def specs_for_range(self, low: Any, high: Any, low_inclusive: bool = True,
                        high_inclusive: bool = True) -> tuple[ShardSpec, ...]:
        """Every shard whose range a ``[low, high]``-style predicate touches."""
        return tuple(
            spec for spec in self.specs
            if spec.overlaps(low, high, low_inclusive, high_inclusive)
        )

    def specs_for_values(self, values) -> tuple[ShardSpec, ...]:
        """Shards owning any value of an IN list, in map order."""
        hit = {self.spec_for_value(value).shard_id for value in values}
        return tuple(spec for spec in self.specs if spec.shard_id in hit)

    def replace(self, shard_id: int, replacements: Sequence[ShardSpec]) -> "ShardMap":
        """A new map with ``shard_id`` swapped for ``replacements`` (a split)."""
        specs: list[ShardSpec] = []
        for spec in self.specs:
            if spec.shard_id == shard_id:
                specs.extend(replacements)
            else:
                specs.append(spec)
        return ShardMap(specs)

    def next_shard_id(self) -> int:
        return max(self._by_id) + 1

    def describe(self) -> list[str]:
        return [spec.describe() for spec in self.specs]


@dataclass(frozen=True)
class CoPartition:
    """A child table routed to its FK parent's shard."""

    fk_column: str
    parent_table: str
    parent_column: str


@dataclass(frozen=True)
class ShardConfig:
    """Placement classes for every table; unnamed tables are broadcast."""

    partitioned: dict[str, str] = field(default_factory=dict)
    co_partitioned: dict[str, CoPartition] = field(default_factory=dict)

    def kind(self, table: str) -> str:
        if table in self.partitioned:
            return "partitioned"
        if table in self.co_partitioned:
            return "co_partitioned"
        return "broadcast"

    def partition_column(self, table: str) -> str:
        return self.partitioned[table]

    def joinable(self, left: str, right: str) -> bool:
        """True when a join's right side is co-located with every left row.

        Broadcast tables join with anything; a co-partitioned child joins
        its parent (either direction) and its co-partitioned siblings.
        """
        if self.kind(right) == "broadcast" or self.kind(left) == "broadcast":
            # A broadcast *left* still scatters; each shard holds the full
            # broadcast table, so the join is correct on whichever shard
            # the partitioned side's rows live.
            return True
        left_co = self.co_partitioned.get(left)
        right_co = self.co_partitioned.get(right)
        if left_co is not None and left_co.parent_table == right:
            return True
        if right_co is not None and right_co.parent_table == left:
            return True
        if left_co is not None and right_co is not None:
            return left_co.parent_table == right_co.parent_table
        return False


#: Placement of the HEDC schema: events and raw units partition by
#: observation time; their dependents follow; admin/location/ops tables
#: broadcast so auth and FK checks work on every shard.
HEDC_SHARD_CONFIG = ShardConfig(
    partitioned={"hle": "start_time", "raw_units": "start_time"},
    co_partitioned={
        "ana": CoPartition("hle_id", "hle", "hle_id"),
        "catalog_members": CoPartition("hle_id", "hle", "hle_id"),
        "views": CoPartition("unit_id", "raw_units", "unit_id"),
    },
)
