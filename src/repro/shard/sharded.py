"""A partitioned catalog behind the single-database ``execute()`` API.

:class:`ShardedDatabase` owns one independent :class:`~repro.metadb.Database`
per time range (each with its own WAL when persistent), routes statements
through :mod:`repro.shard.router`, merges scatter-gather reads through
:mod:`repro.shard.merge`, and wraps every shard in the same
circuit-breaker/failover machinery :class:`ReplicatedDatabase` uses per
copy — so a dead shard degrades *one time range* instead of the whole
catalog.  Because it quacks like a :class:`Database` (``execute`` /
``begin`` / ``commit`` / ``rollback`` / ``allocate_id`` / DDL), the DM's
I/O layer, pools and semantic layers sit on top of it unchanged.

Degradation semantics: reads over a dead shard's range return a
:class:`PartialResult` (a ``list`` subclass carrying the missing ranges)
when ``degraded_reads`` is on; writes never degrade — a failed shard
write raises and the cross-shard transaction rolls back everywhere.

Concurrency: reads are never blocked.  Writes and ``begin()`` pass a
gate that an online split closes briefly during cutover
(:mod:`repro.shard.split`); topology is an immutable snapshot swapped
atomically, so in-flight readers keep a consistent view throughout.
"""

from __future__ import annotations

import json
import os
import threading
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Optional, Sequence, Union

from ..obs import Observability, resolve as resolve_obs
from ..resil.breaker import BreakerOpen, CircuitBreaker
from ..resil.faults import fire as fire_fault
from ..resil.policies import TRANSIENT_ERRORS
from ..metadb.database import Database, DatabaseStats
from ..metadb.errors import TransactionError
from ..metadb.query import (
    Aggregate, Delete, Explain, Insert, Select, Update,
)
from ..metadb.schema import TableSchema
from ..metadb.sql import Statement, parse
from .merge import prepare_scatter
from .partition import (
    HEDC_SHARD_CONFIG, ShardConfig, ShardError, ShardMap, ShardSpec,
    ShardUnavailable,
)
from .router import BROADCAST, PRUNED, RouteDecision, route_partitioned, scatter_all

TOPOLOGY_FILE = "topology.json"


class PartialResult(list):
    """A degraded read: rows from the shards that answered.

    Behaves as a plain result list; ``missing_shards`` names the time
    ranges the answer does *not* cover (aggregates are partial too).
    """

    def __init__(self, rows: Sequence[dict], missing: Sequence[ShardSpec]):
        super().__init__(rows)
        self.missing_shards = [
            {"shard_id": spec.shard_id, "low": spec.low, "high": spec.high}
            for spec in missing
        ]

    @property
    def complete(self) -> bool:
        return not self.missing_shards


class _Topology:
    """Immutable (map, databases) pair; swapped as one reference."""

    __slots__ = ("shard_map", "dbs")

    def __init__(self, shard_map: ShardMap, dbs: dict[int, Database]):
        self.shard_map = shard_map
        self.dbs = dbs

    def db(self, shard_id: int) -> Database:
        return self.dbs[shard_id]

    def first_db(self) -> Database:
        return self.dbs[self.shard_map.specs[0].shard_id]


class _ShardedTransaction:
    """One logical transaction fanned out as one part per shard."""

    def __init__(self, topology: _Topology, parts: dict[int, tuple]):
        self.topology = topology
        self.parts = parts  # shard_id -> (Database, Transaction)

    @property
    def state(self):
        return next(iter(self.parts.values()))[1].state


class ShardedDatabase:
    """Time-partitioned shards behind the standard database interface."""

    def __init__(
        self,
        boundaries: Sequence[float] = (),
        path: Optional[Union[str, Path]] = None,
        name: str = "metadb",
        obs: Optional[Observability] = None,
        config: Optional[ShardConfig] = None,
        breaker_cooldown_s: float = 5.0,
        degraded_reads: bool = True,
        replicas_per_shard: int = 1,
        replica_max_lag: int = 0,
    ):
        self.name = name
        self.obs = resolve_obs(obs)
        self._config = config if config is not None else HEDC_SHARD_CONFIG
        self._path = Path(path) if path is not None else None
        self.breaker_cooldown_s = breaker_cooldown_s
        self.degraded_reads = degraded_reads
        if replicas_per_shard < 1:
            raise ShardError("replicas_per_shard must be >= 1")
        self.replicas_per_shard = replicas_per_shard
        self.replica_max_lag = replica_max_lag
        self.stats = DatabaseStats()
        self.breakers: dict[int, CircuitBreaker] = {}
        # Write/begin gate an online split closes briefly during cutover.
        self._gate = threading.Condition(threading.Lock())
        self._stalled = False
        self._open_txs = 0
        self._autocommit_writes = 0
        self._split_lock = threading.Lock()
        self._seq_lock = threading.Lock()
        self._sequences: dict[tuple[str, str], int] = {}
        self._report_lock = threading.Lock()
        self._read_cursor = 0
        self.route_counts = {"pruned": 0, "scatter": 0, "broadcast": 0}
        self.reads_by_shard: dict[int, int] = {}
        self.writes_by_shard: dict[int, int] = {}
        self.degraded_count = 0
        self.splits = 0
        self._route_counters: dict[str, Any] = {}
        specs = self._load_or_create_specs(boundaries)
        dbs = {spec.shard_id: self._new_shard_db(spec.shard_id) for spec in specs}
        self._topology = _Topology(ShardMap(specs), dbs)
        self._persist_topology()
        self.obs.set_gauge("metadb.shard.count", len(specs), db=self.name)

    # -- topology -------------------------------------------------------------

    def _load_or_create_specs(self, boundaries: Sequence[float]) -> list[ShardSpec]:
        if self._path is not None:
            topo_path = self._path / TOPOLOGY_FILE
            if topo_path.exists():
                with open(topo_path, encoding="utf-8") as handle:
                    payload = json.load(handle)
                # The replica count is part of the persisted topology, so a
                # reopened catalog rebuilds the same replica groups.
                self.replicas_per_shard = payload.get(
                    "replicas_per_shard", self.replicas_per_shard
                )
                return [
                    ShardSpec(entry["id"], entry["low"], entry["high"])
                    for entry in payload["shards"]
                ]
        return list(ShardMap.from_boundaries(boundaries).specs)

    def _new_shard_db(self, shard_id: int) -> Database:
        shard_path = self._path / f"shard-{shard_id}" if self._path else None
        if self.replicas_per_shard > 1:
            # Local import: repro.repl must stay importable without the
            # shard tier (it is also used standalone), so the dependency
            # points this way only.
            from ..repl import ReplicaGroup

            return ReplicaGroup(
                path=shard_path,
                name=f"{self.name}-s{shard_id}",
                n_replicas=self.replicas_per_shard - 1,
                obs=self.obs,
                max_lag=self.replica_max_lag,
                breaker_cooldown_s=self.breaker_cooldown_s,
                fault_scope=f"metadb.shard.{shard_id}",
            )
        return Database(
            path=shard_path,
            name=f"{self.name}-s{shard_id}",
            obs=self.obs,
            fault_scope=f"metadb.shard.{shard_id}",
        )

    def _persist_topology(self) -> None:
        if self._path is None:
            return
        self._path.mkdir(parents=True, exist_ok=True)
        payload = {
            "shards": [
                {"id": spec.shard_id, "low": spec.low, "high": spec.high,
                 "dir": f"shard-{spec.shard_id}"}
                for spec in self._topology.shard_map
            ],
            "replicas_per_shard": self.replicas_per_shard,
        }
        tmp_path = self._path / (TOPOLOGY_FILE + ".tmp")
        with open(tmp_path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        os.replace(tmp_path, self._path / TOPOLOGY_FILE)

    @property
    def n_shards(self) -> int:
        return len(self._topology.shard_map)

    @property
    def shard_map(self) -> ShardMap:
        return self._topology.shard_map

    def shard_db(self, shard_id: int) -> Database:
        """The shard's underlying database (tests and the split protocol)."""
        return self._topology.db(shard_id)

    def _breaker_for(self, shard_id: int) -> CircuitBreaker:
        breaker = self.breakers.get(shard_id)
        if breaker is None:
            breaker = CircuitBreaker(
                name=f"metadb.shard.{self.name}-s{shard_id}",
                window=10,
                min_calls=3,
                failure_rate=0.5,
                cooldown_s=self.breaker_cooldown_s,
                obs=self.obs,
            )
            self.breakers[shard_id] = breaker
        return breaker

    # -- write/begin gate (closed briefly by an online split) -------------------

    @contextmanager
    def _write_permit(self):
        with self._gate:
            while self._stalled:
                self._gate.wait()
            self._autocommit_writes += 1
        try:
            yield
        finally:
            with self._gate:
                self._autocommit_writes -= 1
                self._gate.notify_all()

    # -- Database-compatible surface ---------------------------------------------

    def has_table(self, name: str) -> bool:
        return self._topology.first_db().has_table(name)

    def table_names(self) -> list[str]:
        return self._topology.first_db().table_names()

    def table(self, name: str):
        """Direct table access — broadcast tables only.

        Partitioned/co-partitioned tables have no single local ``Table``;
        query them through ``execute()``.
        """
        if self._config.kind(name) != "broadcast":
            raise ShardError(
                f"table {name!r} is {self._config.kind(name)}; "
                "query it through execute()"
            )
        return self._topology.first_db().table(name)

    def create_table(self, schema: TableSchema) -> None:
        with self._write_permit():
            for spec in self._topology.shard_map:
                self._topology.db(spec.shard_id).create_table(
                    TableSchema.from_dict(schema.to_dict())
                )

    def drop_table(self, name: str) -> None:
        with self._write_permit():
            for spec in self._topology.shard_map:
                self._topology.db(spec.shard_id).drop_table(name)

    def allocate_id(self, table: str, column: str) -> int:
        """Globally unique ids: the counter seeds from the maximum across
        every shard, then increments under one lock."""
        with self._seq_lock:
            key = (table, column)
            if key not in self._sequences:
                topology = self._topology
                current_max = 0
                for spec in topology.shard_map:
                    for row in topology.db(spec.shard_id).table(table).rows():
                        value = row.get(column)
                        if isinstance(value, int) and value > current_max:
                            current_max = value
                self._sequences[key] = current_max
            self._sequences[key] += 1
            return self._sequences[key]

    def checkpoint(self) -> None:
        topology = self._topology
        for spec in topology.shard_map:
            topology.db(spec.shard_id).checkpoint()

    def close(self) -> None:
        topology = self._topology
        for spec in topology.shard_map:
            topology.db(spec.shard_id).close()

    # -- transactions -------------------------------------------------------------

    def begin(self) -> _ShardedTransaction:
        with self._gate:
            while self._stalled:
                self._gate.wait()
            self._open_txs += 1
        topology = self._topology
        return _ShardedTransaction(topology, self._make_parts(topology))

    def _make_parts(self, topology: _Topology) -> dict[int, tuple]:
        return {
            spec.shard_id: (topology.db(spec.shard_id),
                            topology.db(spec.shard_id).begin())
            for spec in topology.shard_map
        }

    def commit(self, tx: _ShardedTransaction) -> None:
        try:
            for db, part in tx.parts.values():
                db.commit(part)
            self.stats.transactions_committed += 1
        finally:
            with self._gate:
                self._open_txs -= 1
                self._gate.notify_all()

    def rollback(self, tx: _ShardedTransaction) -> None:
        try:
            for db, part in tx.parts.values():
                db.rollback(part)
            self.stats.transactions_rolled_back += 1
        finally:
            with self._gate:
                self._open_txs -= 1
                self._gate.notify_all()

    # -- execution -----------------------------------------------------------------

    def execute(
        self,
        statement: Union[Statement, str],
        tx: Optional[_ShardedTransaction] = None,
    ) -> Any:
        if isinstance(statement, str):
            statement = parse(statement)
        if isinstance(statement, Explain):
            return [self.explain_plan(statement.select)]
        if isinstance(statement, Select):
            return self._execute_select(statement)
        if tx is not None:
            if not isinstance(tx, _ShardedTransaction):
                raise TransactionError(
                    "a sharded database needs transactions from its own begin()"
                )
            return self._execute_mutation(statement, tx)
        with self._write_permit():
            topology = self._topology
            local_tx = _ShardedTransaction(topology, self._make_parts(topology))
            try:
                result = self._execute_mutation(statement, local_tx)
            except Exception:
                for db, part in local_tx.parts.values():
                    db.rollback(part)
                self.stats.transactions_rolled_back += 1
                raise
            for db, part in local_tx.parts.values():
                db.commit(part)
            self.stats.transactions_committed += 1
            return result

    # -- reads ---------------------------------------------------------------------

    def _execute_select(self, select: Select) -> list[dict[str, Any]]:
        topology = self._topology
        config = self._config
        kind = config.kind(select.table)
        if select.join is not None:
            if not config.joinable(select.table, select.join.table):
                raise ShardError(
                    f"cannot join {select.table!r} with {select.join.table!r}: "
                    "tables are not co-located under the shard config"
                )
            if kind == "broadcast" and config.kind(select.join.table) != "broadcast":
                # Every shard holds the full broadcast side; the join's
                # partitioned side is disjoint across shards, so a scatter
                # concatenation is exactly the single-node join.
                return self._scatter_read(select, scatter_all(topology.shard_map),
                                          topology)
        if kind == "broadcast":
            return self._broadcast_read(select, topology)
        if kind == "partitioned":
            decision = route_partitioned(
                select.where, config.partition_column(select.table),
                topology.shard_map,
            )
        else:
            decision = scatter_all(topology.shard_map)
        return self._scatter_read(select, decision, topology)

    def _broadcast_read(self, select: Select, topology: _Topology) -> list[dict]:
        """Round-robin a broadcast-table read across shards with failover
        — broadcast tables multiply read capacity like replicas do."""
        specs = topology.shard_map.specs
        with self._report_lock:
            start = self._read_cursor
            self._read_cursor += 1
        self._count_route(BROADCAST, 1, len(specs))
        last_transient: Optional[BaseException] = None
        for offset in range(len(specs)):
            spec = specs[(start + offset) % len(specs)]
            breaker = self._breaker_for(spec.shard_id)
            if not breaker.allow():
                continue
            try:
                fire_fault(f"metadb.shard.{spec.shard_id}.statement")
                rows = topology.db(spec.shard_id).execute(select)
            except TRANSIENT_ERRORS as exc:
                breaker.record_failure()
                last_transient = exc
                self.obs.count("metadb.shard.failovers", db=self.name,
                               shard=str(spec.shard_id))
                continue
            breaker.record_success()
            with self._report_lock:
                self.stats.selects += 1
                self.stats.rows_read += len(rows)
                self.reads_by_shard[spec.shard_id] = (
                    self.reads_by_shard.get(spec.shard_id, 0) + 1
                )
            return rows
        if last_transient is not None:
            raise last_transient
        raise BreakerOpen(
            f"metadb.shard.{self.name}.reads",
            min(b.retry_after_s() for b in self.breakers.values()),
        )

    def _scatter_read(self, select: Select, decision: RouteDecision,
                      topology: _Topology) -> list[dict]:
        self._count_route(decision.kind, len(decision.specs),
                          len(topology.shard_map))
        shard_select, merge = prepare_scatter(select)
        gathered: list[list[dict]] = []
        missing: list[ShardSpec] = []
        for spec in decision.specs:
            shard_id = spec.shard_id
            breaker = self._breaker_for(shard_id)
            if not breaker.allow():
                missing.append(spec)
                continue
            try:
                fire_fault(f"metadb.shard.{shard_id}.statement")
                rows = topology.db(shard_id).execute(shard_select)
            except TRANSIENT_ERRORS:
                breaker.record_failure()
                missing.append(spec)
                self.obs.count("metadb.shard.failures", db=self.name,
                               shard=str(shard_id))
                continue
            breaker.record_success()
            gathered.append(rows)
            with self._report_lock:
                self.reads_by_shard[shard_id] = (
                    self.reads_by_shard.get(shard_id, 0) + 1
                )
        rows = merge(gathered)
        with self._report_lock:
            self.stats.selects += 1
            self.stats.rows_read += len(rows)
        if not missing:
            return rows
        if not self.degraded_reads:
            raise ShardUnavailable(
                f"{len(missing)} of {len(decision.specs)} targeted shards "
                f"unavailable for {select.table!r}",
                shard_ids=[spec.shard_id for spec in missing],
            )
        with self._report_lock:
            self.degraded_count += 1
        self.obs.count("metadb.shard.degraded", db=self.name)
        return PartialResult(rows, missing)

    def _count_route(self, kind: str, n_touched: int, n_total: int) -> None:
        with self._report_lock:
            self.route_counts[kind] = self.route_counts.get(kind, 0) + 1
        counter = self._route_counters.get(kind)
        if counter is None:
            counter = self.obs.counter("metadb.shard.route", db=self.name,
                                       route=kind)
            self._route_counters[kind] = counter
        counter.inc()
        self.obs.count("metadb.shard.shards_touched", n_touched, db=self.name)

    # -- writes --------------------------------------------------------------------

    def _execute_mutation(self, statement: Statement, tx: _ShardedTransaction) -> Any:
        if isinstance(statement, Insert):
            return self._execute_insert(statement, tx)
        if isinstance(statement, Update):
            return self._execute_update(statement, tx)
        if isinstance(statement, Delete):
            return self._execute_delete(statement, tx)
        raise ShardError(f"cannot execute {statement!r}")

    def _exec_on_shard(self, tx: _ShardedTransaction, shard_id: int,
                       statement: Statement) -> Any:
        db, part = tx.parts[shard_id]
        fire_fault(f"metadb.shard.{shard_id}.statement")
        result = db.execute(statement, tx=part)
        with self._report_lock:
            self.writes_by_shard[shard_id] = (
                self.writes_by_shard.get(shard_id, 0) + 1
            )
        return result

    def _normalized_row(self, tx: _ShardedTransaction, table: str,
                        values: dict[str, Any]) -> dict[str, Any]:
        # Materialise callable defaults (e.g. created_at) ONCE so broadcast
        # copies store identical rows and routing sees the final values.
        schema = tx.topology.first_db().table(table).schema
        return schema.normalize_row(values)

    def _parent_shard(self, tx: _ShardedTransaction, parent_table: str,
                      parent_column: str, value: Any) -> int:
        topology = tx.topology
        for spec in topology.shard_map:
            table = topology.db(spec.shard_id).table(parent_table)
            if table.exists_value(parent_column, value):
                return spec.shard_id
        # No parent anywhere: route to the first shard so the per-shard
        # foreign-key check raises the normal IntegrityError.
        return topology.shard_map.specs[0].shard_id

    def _execute_insert(self, statement: Insert, tx: _ShardedTransaction) -> int:
        table = statement.table
        kind = self._config.kind(table)
        row = self._normalized_row(tx, table, statement.values)
        routed = Insert(table, row)
        if kind == "broadcast":
            result = None
            for spec in tx.topology.shard_map:
                rowid = self._exec_on_shard(tx, spec.shard_id, routed)
                result = rowid if result is None else result
            self.stats.inserts += 1
            self.stats.rows_written += 1
            return result
        if kind == "partitioned":
            column = self._config.partition_column(table)
            value = row.get(column)
            if value is None:
                # NOT NULL will reject it with the proper IntegrityError.
                shard_id = tx.topology.shard_map.specs[0].shard_id
            else:
                shard_id = tx.topology.shard_map.spec_for_value(value).shard_id
        else:
            co = self._config.co_partitioned[table]
            shard_id = self._parent_shard(
                tx, co.parent_table, co.parent_column, row.get(co.fk_column)
            )
        result = self._exec_on_shard(tx, shard_id, routed)
        self.stats.inserts += 1
        self.stats.rows_written += 1
        return result

    def _count_matching(self, db: Database, table: str, where) -> int:
        rows = db.execute(Select(table, where=where,
                                 aggregates=[Aggregate("count", "*", "n")]))
        return rows[0]["n"]

    def _execute_update(self, statement: Update, tx: _ShardedTransaction) -> int:
        table = statement.table
        kind = self._config.kind(table)
        topology = tx.topology
        if kind == "broadcast":
            result = None
            for spec in topology.shard_map:
                count = self._exec_on_shard(tx, spec.shard_id, statement)
                result = count if result is None else result
            self.stats.updates += 1
            self.stats.rows_written += int(result or 0)
            return int(result or 0)
        if kind == "partitioned":
            column = self._config.partition_column(table)
            decision = route_partitioned(statement.where, column,
                                         topology.shard_map)
            new_value = statement.changes.get(column)
            total = 0
            for spec in decision.specs:
                if column in statement.changes and not spec.covers(new_value):
                    db = topology.db(spec.shard_id)
                    if self._count_matching(db, table, statement.where):
                        raise ShardError(
                            f"update would move {table!r} rows out of "
                            f"{spec.describe()}; cross-shard row migration "
                            "requires a split/rebalance"
                        )
                    continue
                total += self._exec_on_shard(tx, spec.shard_id, statement)
            self.stats.updates += 1
            self.stats.rows_written += total
            return total
        co = self._config.co_partitioned[table]
        if co.fk_column in statement.changes:
            home = self._parent_shard(tx, co.parent_table, co.parent_column,
                                      statement.changes[co.fk_column])
            total = 0
            for spec in topology.shard_map:
                if spec.shard_id == home:
                    total += self._exec_on_shard(tx, spec.shard_id, statement)
                elif self._count_matching(topology.db(spec.shard_id), table,
                                          statement.where):
                    raise ShardError(
                        f"update would re-parent {table!r} rows across shards"
                    )
            self.stats.updates += 1
            self.stats.rows_written += total
            return total
        total = 0
        for spec in topology.shard_map:
            total += self._exec_on_shard(tx, spec.shard_id, statement)
        self.stats.updates += 1
        self.stats.rows_written += total
        return total

    def _execute_delete(self, statement: Delete, tx: _ShardedTransaction) -> int:
        table = statement.table
        kind = self._config.kind(table)
        topology = tx.topology
        if kind == "broadcast":
            result = None
            for spec in topology.shard_map:
                count = self._exec_on_shard(tx, spec.shard_id, statement)
                result = count if result is None else result
            self.stats.deletes += 1
            self.stats.rows_written += int(result or 0)
            return int(result or 0)
        if kind == "partitioned":
            column = self._config.partition_column(table)
            decision = route_partitioned(statement.where, column,
                                         topology.shard_map)
            specs = decision.specs
        else:
            specs = topology.shard_map.specs
        total = 0
        for spec in specs:
            total += self._exec_on_shard(tx, spec.shard_id, statement)
        self.stats.deletes += 1
        self.stats.rows_written += total
        return total

    # -- EXPLAIN -------------------------------------------------------------------

    def explain(self, select) -> str:
        plan = self.explain_plan(select)
        route = plan["shard_route"]
        return (
            f"{plan['description']} over {len(route['shards'])}/"
            f"{route['n_shards']} shards ({route['kind']})"
        )

    def explain_plan(self, select: Union[Select, Explain, str]) -> dict[str, Any]:
        """Single-node EXPLAIN of the per-shard plan plus a ``shard_route``
        section: which shards the router would touch and why."""
        if isinstance(select, str):
            select = parse(select)
        if isinstance(select, Explain):
            select = select.select
        topology = self._topology
        config = self._config
        kind = config.kind(select.table)
        if kind == "broadcast" and (
            select.join is None or config.kind(select.join.table) == "broadcast"
        ):
            decision = RouteDecision(BROADCAST, topology.shard_map.specs[:1])
            shard_select = select
        else:
            if kind == "partitioned":
                decision = route_partitioned(
                    select.where, config.partition_column(select.table),
                    topology.shard_map,
                )
            else:
                decision = scatter_all(topology.shard_map)
            shard_select, _merge = prepare_scatter(select)
        if decision.specs:
            representative = topology.db(decision.specs[0].shard_id)
        else:
            representative = topology.first_db()
        plan = representative.explain_plan(shard_select)
        plan["shard_route"] = {
            "kind": decision.kind,
            "shards": list(decision.shard_ids),
            "n_shards": len(topology.shard_map),
            "pruned": decision.kind == PRUNED,
        }
        return plan

    # -- topology changes ----------------------------------------------------------

    def split(self, shard_id: int, at: float) -> tuple[int, int]:
        """Online split: see :func:`repro.shard.split.split_shard`."""
        from .split import split_shard

        return split_shard(self, shard_id, at)

    def rebalance(self, table: Optional[str] = None) -> Optional[tuple[int, int]]:
        """Split the most loaded shard at its median partition value."""
        from .split import rebalance

        return rebalance(self, table)

    # -- reporting -----------------------------------------------------------------

    def shard_report(self) -> dict[str, Any]:
        """Topology, placement config, routing and per-shard health —
        the ``shard`` section of the DM instrument panel."""
        topology = self._topology
        data_tables = sorted(
            list(self._config.partitioned) + list(self._config.co_partitioned)
        )
        shards = []
        for spec in topology.shard_map:
            db = topology.db(spec.shard_id)
            rows = {
                table: len(db.table(table))
                for table in data_tables if db.has_table(table)
            }
            breaker = self.breakers.get(spec.shard_id)
            entry = {
                "shard_id": spec.shard_id,
                "low": spec.low,
                "high": spec.high,
                "db": db.name,
                "rows": rows,
                "total_rows": sum(rows.values()),
                "breaker": breaker.state.value if breaker is not None else "closed",
                "reads": self.reads_by_shard.get(spec.shard_id, 0),
                "writes": self.writes_by_shard.get(spec.shard_id, 0),
            }
            reporter = getattr(db, "repl_report", None)
            if reporter is not None:
                entry["replicas"] = reporter()
            shards.append(entry)
        return {
            "n_shards": len(topology.shard_map),
            "replicas_per_shard": self.replicas_per_shard,
            "partitioned": dict(self._config.partitioned),
            "co_partitioned": {
                child: co.parent_table
                for child, co in self._config.co_partitioned.items()
            },
            "routes": dict(self.route_counts),
            "degraded_reads": self.degraded_count,
            "splits": self.splits,
            "shards": shards,
        }

    def repl_report(self) -> Optional[dict[str, Any]]:
        """Per-shard replica topology when ``replicas_per_shard > 1`` —
        the ``replication`` section of the instrument panel (duck-typed
        by the web tier, like :meth:`shard_report`)."""
        if self.replicas_per_shard <= 1:
            return None
        topology = self._topology
        per_shard = {}
        for spec in topology.shard_map:
            reporter = getattr(topology.db(spec.shard_id), "repl_report", None)
            if reporter is not None:
                per_shard[spec.shard_id] = reporter()
        return {
            "replicas_per_shard": self.replicas_per_shard,
            "max_lag": self.replica_max_lag,
            "per_shard": per_shard,
        }
