"""Routing: resolve a statement's WHERE clause to a shard subset.

Pruning reuses the planner's predicate analysis (PR 4): the same
``equality_on`` / ``in_list_on`` / ``range_on`` helpers that pick index
access paths also decide which time ranges a query can possibly touch.
Equality pins one shard; an IN list resolves each value to its owner;
a range (including open-ended ``>=`` / ``<`` bounds) selects every
overlapping shard.  Disjunctions and predicates that never mention the
partition column scatter to all shards — correct, just not pruned.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..metadb.predicate import Predicate, equality_on, in_list_on, range_on
from .partition import ShardMap, ShardSpec

#: Route kinds, also the ``route`` label on the obs counter.
PRUNED = "pruned"        # a strict subset of shards
SCATTER = "scatter"      # every shard
BROADCAST = "broadcast"  # any one shard (table replicated everywhere)


@dataclass(frozen=True)
class RouteDecision:
    """Which shards a statement touches and why."""

    kind: str
    specs: tuple[ShardSpec, ...]

    @property
    def shard_ids(self) -> tuple[int, ...]:
        return tuple(spec.shard_id for spec in self.specs)


def route_partitioned(where: Optional[Predicate], column: str,
                      shard_map: ShardMap) -> RouteDecision:
    """Shard subset for a statement over a partitioned table."""
    value = equality_on(where, column)
    if value is not None:
        specs = (shard_map.spec_for_value(value),)
        return _decide(specs, shard_map)
    in_values = in_list_on(where, column)
    if in_values is not None:
        return _decide(shard_map.specs_for_values(in_values), shard_map)
    bounds = range_on(where, column)
    if bounds is not None:
        low, high, low_inclusive, high_inclusive = bounds
        specs = shard_map.specs_for_range(low, high, low_inclusive, high_inclusive)
        return _decide(specs, shard_map)
    return RouteDecision(SCATTER, shard_map.specs)


def scatter_all(shard_map: ShardMap) -> RouteDecision:
    return RouteDecision(SCATTER, shard_map.specs)


def _decide(specs: tuple[ShardSpec, ...], shard_map: ShardMap) -> RouteDecision:
    if len(specs) >= len(shard_map):
        return RouteDecision(SCATTER, shard_map.specs)
    return RouteDecision(PRUNED, specs)
