"""Merge phase of scatter-gather SELECTs.

Each shard executes a rewritten per-shard SELECT; this module combines
the per-shard result lists so the merged output is exactly what a
single-node :func:`repro.metadb.query.execute_select` would return:

* **ORDER BY** — each shard returns its rows already ordered (with
  LIMIT pushed down as ``offset + limit`` per shard, offset zero), and
  the merge is a k-way ``heapq.merge`` over the shard streams under the
  engine's own NULLS-LAST order key, re-using the bounded Top-N idea:
  no shard ships more than ``offset + limit`` rows.
* **Aggregates** — rewritten into decomposable partials (``avg`` becomes
  a shard-local ``sum`` + ``count`` pair) and recombined; GROUP BY
  groups merge by key and are emitted in the single-node engine's
  deterministic group order.
* **Plain scans** — concatenated in shard order with the global
  OFFSET/LIMIT applied after the fact.
"""

from __future__ import annotations

import heapq
from dataclasses import replace
from itertools import chain, islice
from typing import Any, Optional, Sequence

from ..metadb.query import Aggregate, Select, _order_key, _project

Rows = list  # list[dict[str, Any]]


def prepare_scatter(select: Select) -> tuple[Select, "Merge"]:
    """Rewrite ``select`` for per-shard execution and build its merge."""
    if select.aggregates:
        partials, combiners = _rewrite_aggregates(select.aggregates)
        shard_select = replace(
            select, columns=None, order_by=(), limit=None, offset=0,
            aggregates=partials,
        )
        return shard_select, _AggregateMerge(select, combiners)
    stop = None if select.limit is None else select.offset + select.limit
    if select.order_by:
        # Strip the projection: the merge needs the ORDER BY columns even
        # when they are not in the output, and projects at the end.
        shard_select = replace(select, columns=None, limit=stop, offset=0)
        return shard_select, _OrderedMerge(select)
    shard_select = replace(select, limit=stop, offset=0)
    return shard_select, _ConcatMerge(select)


class Merge:
    """Combines per-shard result lists into the global result."""

    def __call__(self, shard_results: Sequence[Rows]) -> Rows:
        raise NotImplementedError


class _ConcatMerge(Merge):
    def __init__(self, select: Select):
        self._offset = select.offset
        self._stop = None if select.limit is None else select.offset + select.limit

    def __call__(self, shard_results: Sequence[Rows]) -> Rows:
        return list(islice(chain.from_iterable(shard_results),
                           self._offset, self._stop))


class _OrderedMerge(Merge):
    def __init__(self, select: Select):
        self._key = _order_key(select.order_by)
        self._offset = select.offset
        self._stop = None if select.limit is None else select.offset + select.limit
        self._columns = select.columns

    def __call__(self, shard_results: Sequence[Rows]) -> Rows:
        merged = heapq.merge(*shard_results, key=self._key)
        rows = islice(merged, self._offset, self._stop)
        return [_project(row, self._columns) for row in rows]


def _rewrite_aggregates(
    aggregates: Sequence[Aggregate],
) -> tuple[tuple[Aggregate, ...], tuple[tuple, ...]]:
    """Per-shard partial aggregates plus combine instructions.

    ``count``/``sum``/``min``/``max`` are already decomposable and keep
    their aliases; ``avg`` is split into a shard-local sum and non-null
    count under reserved aliases and recombined as ``total/count``.
    """
    partials: list[Aggregate] = []
    combiners: list[tuple] = []
    for aggregate in aggregates:
        if aggregate.func == "avg":
            sum_alias = f"__shard_sum__{aggregate.alias}"
            n_alias = f"__shard_n__{aggregate.alias}"
            partials.append(Aggregate("sum", aggregate.column, sum_alias))
            partials.append(Aggregate("count", aggregate.column, n_alias))
            combiners.append(("avg", aggregate.alias, sum_alias, n_alias))
        else:
            partials.append(aggregate)
            combiners.append((aggregate.func, aggregate.alias, aggregate.alias))
    return tuple(partials), tuple(combiners)


def _combine(partial_rows: Rows, combiners: Sequence[tuple]) -> dict[str, Any]:
    out: dict[str, Any] = {}
    for combiner in combiners:
        func, alias = combiner[0], combiner[1]
        if func == "avg":
            _func, _alias, sum_alias, n_alias = combiner
            total_n = sum(row[n_alias] for row in partial_rows)
            totals = [row[sum_alias] for row in partial_rows
                      if row[sum_alias] is not None]
            out[alias] = sum(totals) / total_n if total_n else None
            continue
        source = combiner[2]
        if func == "count":
            out[alias] = sum(row[source] for row in partial_rows)
            continue
        values = [row[source] for row in partial_rows if row[source] is not None]
        if not values:
            out[alias] = None
        elif func == "sum":
            out[alias] = sum(values)
        elif func == "min":
            out[alias] = min(values)
        elif func == "max":
            out[alias] = max(values)
    return out


class _AggregateMerge(Merge):
    def __init__(self, select: Select, combiners: Sequence[tuple]):
        self._group_by = tuple(select.group_by)
        self._combiners = tuple(combiners)

    def __call__(self, shard_results: Sequence[Rows]) -> Rows:
        if not self._group_by:
            # Each shard contributes exactly one partial row.
            partial_rows = [rows[0] for rows in shard_results if rows]
            return [_combine(partial_rows, self._combiners)]
        groups: dict[tuple, Rows] = {}
        for rows in shard_results:
            for row in rows:
                key = tuple(row.get(column) for column in self._group_by)
                groups.setdefault(key, []).append(row)
        result = []
        # Same deterministic group order as the single-node engine.
        for key, group_rows in sorted(
            groups.items(), key=lambda item: tuple(map(repr, item[0]))
        ):
            out = dict(zip(self._group_by, key))
            out.update(_combine(group_rows, self._combiners))
            result.append(out)
        return result
