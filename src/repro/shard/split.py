"""Online shard split: copy-then-cutover under a short write stall.

A split replaces one shard with two fresh databases covering the lower
and upper halves of its time range.  The protocol keeps the catalog
readable throughout and loses/duplicates nothing:

1. **Build** — two empty databases are created with the shard's schema
   (foreign-key dependency order, as :func:`clone_database` does).
2. **Warm copy** — every row is copied (``restore`` preserves rowids and
   bypasses per-shard FK checks) while reads *and writes* keep flowing
   to the old shard.  Each copied row's snapshot and placement are
   remembered for the reconcile step.
3. **Cutover** — the write gate closes: new transactions and autocommit
   writes block, in-flight ones drain.  The delta since the warm copy
   (inserts, updates, deletes, and rows whose *placement* changed, e.g.
   a child whose parent moved) is reconciled, the immutable topology
   reference is swapped, and the gate reopens.  Reads are never blocked:
   a reader holds either the old topology (old shard is complete) or
   the new one (both halves are complete).

The old database object is left open and unreferenced — a reader that
snapshotted the old topology mid-scatter may still finish against it.

Placement within the split range:

* partitioned rows go low/high by their partition value vs ``at``;
* broadcast rows go to **both** halves;
* co-partitioned rows follow their parent (parents are reconciled
  first, so the lookup is against settled data).
"""

from __future__ import annotations

import time
from typing import Any, Optional

from ..metadb.database import Database
from ..metadb.errors import SchemaError
from ..metadb.schema import TableSchema
from .partition import ShardError, ShardSpec
from .sharded import ShardedDatabase, _Topology


def _dependency_order(db: Database) -> list[str]:
    """Table names ordered so FK parents precede their children."""
    ordered: list[str] = []
    pending = list(db.table_names())
    while pending:
        progressed = False
        for name in list(pending):
            schema = db.table(name).schema
            targets = {fk.ref_table for fk in schema.foreign_keys} - {name}
            if all(target in ordered for target in targets):
                ordered.append(name)
                pending.remove(name)
                progressed = True
        if not progressed:
            raise SchemaError(f"circular foreign keys among {pending}")
    return ordered


def _create_schema(source: Database, targets: list[Database],
                   tables: list[str]) -> None:
    for name in tables:
        schema = source.table(name).schema
        for target in targets:
            target.create_table(TableSchema.from_dict(schema.to_dict()))


def _sides_for(sharded: ShardedDatabase, table: str, row: dict[str, Any],
               at: float, low_db: Database, high_db: Database) -> tuple:
    config = sharded._config
    kind = config.kind(table)
    if kind == "broadcast":
        return (low_db, high_db)
    if kind == "partitioned":
        value = row.get(config.partition_column(table))
        if value is not None and value < at:
            return (low_db,)
        return (high_db,)
    co = config.co_partitioned[table]
    value = row.get(co.fk_column)
    if low_db.table(co.parent_table).exists_value(co.parent_column, value):
        return (low_db,)
    if high_db.table(co.parent_table).exists_value(co.parent_column, value):
        return (high_db,)
    return (low_db,)


def split_shard(sharded: ShardedDatabase, shard_id: int, at: float) -> tuple[int, int]:
    """Split ``shard_id`` at partition value ``at``; returns the two new ids."""
    with sharded._split_lock:
        topology = sharded._topology
        spec = topology.shard_map.spec(shard_id)
        if (spec.low is not None and at <= spec.low) or (
            spec.high is not None and at >= spec.high
        ):
            raise ShardError(f"split point {at!r} outside {spec.describe()}")
        old_db = topology.db(shard_id)
        low_id = topology.shard_map.next_shard_id()
        high_id = low_id + 1
        low_spec = ShardSpec(low_id, spec.low, at)
        high_spec = ShardSpec(high_id, at, spec.high)
        low_db = sharded._new_shard_db(low_id)
        high_db = sharded._new_shard_db(high_id)
        # The warm copy writes straight into the primary tables below,
        # bypassing log shipping.  When the new shard dbs are replica
        # groups, park their followers (out of the read rotation) for the
        # duration and re-sync them via anti-entropy once the cutover has
        # settled — otherwise they would silently diverge at lag zero.
        for new_db in (low_db, high_db):
            pause = getattr(new_db, "pause_followers", None)
            if pause is not None:
                pause()
        tables = _dependency_order(old_db)
        _create_schema(old_db, [low_db, high_db], tables)

        # Warm copy: reads and writes keep flowing to the old shard.
        copied: dict[str, dict[int, tuple]] = {}
        for name in tables:
            table = old_db.table(name)
            snapshot: dict[int, tuple] = {}
            for rowid in list(table.rowids()):
                try:
                    row = dict(table.row(rowid))
                except KeyError:
                    continue  # deleted mid-scan; reconcile handles it
                sides = _sides_for(sharded, name, row, at, low_db, high_db)
                for side in sides:
                    side.table(name).restore(rowid, dict(row))
                snapshot[rowid] = (sides, row)
            copied[name] = snapshot

        # Cutover: close the write gate, drain in-flight writes and open
        # transactions, reconcile the delta, swap the topology reference.
        stall_started = time.perf_counter()
        with sharded._gate:
            sharded._stalled = True
            while sharded._open_txs or sharded._autocommit_writes:
                sharded._gate.wait()
        try:
            for name in tables:
                table = old_db.table(name)
                snapshot = copied[name]
                current_ids = set(table.rowids())
                # Two passes: all deletions first, then restores, so a
                # unique value that moved between rows mid-copy cannot
                # collide with its own stale copy.
                to_restore: list[tuple[int, dict, tuple]] = []
                for rowid in current_ids:
                    row = dict(table.row(rowid))
                    sides = _sides_for(sharded, name, row, at, low_db, high_db)
                    previous = snapshot.get(rowid)
                    if previous is not None and previous[1] == row \
                            and previous[0] == sides:
                        continue
                    if previous is not None:
                        for side in previous[0]:
                            try:
                                side.table(name).delete(rowid)
                            except KeyError:
                                pass
                    to_restore.append((rowid, row, sides))
                for rowid, (sides, _row) in snapshot.items():
                    if rowid not in current_ids:
                        for side in sides:
                            try:
                                side.table(name).delete(rowid)
                            except KeyError:
                                pass
                for rowid, row, sides in to_restore:
                    for side in sides:
                        side.table(name).restore(rowid, dict(row))
            new_map = topology.shard_map.replace(shard_id, [low_spec, high_spec])
            new_dbs = dict(topology.dbs)
            del new_dbs[shard_id]
            new_dbs[low_id] = low_db
            new_dbs[high_id] = high_db
            sharded._topology = _Topology(new_map, new_dbs)
        finally:
            with sharded._gate:
                sharded._stalled = False
                sharded._gate.notify_all()
        stall_s = time.perf_counter() - stall_started

        sharded.splits += 1
        sharded.breakers.pop(shard_id, None)
        sharded._persist_topology()
        # Reads on the new shards are served by their primaries until the
        # followers re-sync (anti-entropy clones the warm-copied rows
        # through the journaled apply path, then shipping resumes).
        for new_db in (low_db, high_db):
            resync = getattr(new_db, "resync_followers", None)
            if resync is not None:
                resync()
        if sharded._path is not None:
            low_db.checkpoint()
            high_db.checkpoint()
        sharded.obs.observe("metadb.shard.split_stall_s", stall_s,
                            db=sharded.name)
        sharded.obs.count("metadb.shard.splits", db=sharded.name)
        sharded.obs.set_gauge("metadb.shard.count", len(sharded._topology.shard_map),
                              db=sharded.name)
        sharded.obs.event(
            "info", "shard", "split",
            f"shard {shard_id} split at {at:g} into "
            f"{low_spec.describe()} and {high_spec.describe()}",
            db=sharded.name, shard_id=shard_id, at=at,
            low_id=low_id, high_id=high_id, stall_s=stall_s,
        )
        return low_id, high_id


def rebalance(sharded: ShardedDatabase,
              table: Optional[str] = None) -> Optional[tuple[int, int]]:
    """Split the shard holding the most rows of ``table`` at its median
    partition value; returns the new shard ids, or None when no shard
    has enough value spread to split."""
    config = sharded._config
    if table is None:
        if not config.partitioned:
            return None
        table = sorted(config.partitioned)[0]
    column = config.partition_column(table)
    topology = sharded._topology
    heaviest = None
    heaviest_rows = 0
    for spec in topology.shard_map:
        count = len(topology.db(spec.shard_id).table(table))
        if count > heaviest_rows:
            heaviest, heaviest_rows = spec, count
    if heaviest is None or heaviest_rows < 2:
        return None
    values = sorted(
        row[column]
        for row in topology.db(heaviest.shard_id).table(table).rows()
        if row.get(column) is not None
    )
    at = values[len(values) // 2]
    if at <= values[0]:
        # Degenerate: everything at/below the median is one value; try the
        # first strictly greater value instead.
        greater = [value for value in values if value > values[0]]
        if not greater:
            return None
        at = greater[0]
    if (heaviest.low is not None and at <= heaviest.low) or (
        heaviest.high is not None and at >= heaviest.high
    ):
        return None
    return split_shard(sharded, heaviest.shard_id, at)
