"""Catalog sharding: time-range partitions behind the database API.

Scaling past the paper's single shared catalog (§7.3 stops at replicated
DMs over one database): the metadata tier itself partitions by
observation time, queries route to only the shards their predicates can
touch, and a dead shard costs one time range instead of the archive.
"""

from .merge import prepare_scatter
from .partition import (
    HEDC_SHARD_CONFIG,
    CoPartition,
    ShardConfig,
    ShardError,
    ShardMap,
    ShardSpec,
    ShardUnavailable,
)
from .router import RouteDecision, route_partitioned
from .sharded import PartialResult, ShardedDatabase
from .split import rebalance, split_shard

__all__ = [
    "HEDC_SHARD_CONFIG",
    "CoPartition",
    "PartialResult",
    "RouteDecision",
    "ShardConfig",
    "ShardError",
    "ShardMap",
    "ShardSpec",
    "ShardUnavailable",
    "ShardedDatabase",
    "prepare_scatter",
    "rebalance",
    "route_partitioned",
    "split_shard",
]
