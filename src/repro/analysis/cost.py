"""Analysis cost models.

The PL's *estimation* phase uses "a simple predictor to inform the user
about the duration of the subsequent execution phase" (paper §5.1).  The
predictors here are calibrated against the paper's Table 1 figures
(imaging: ~20 s per 800 KB on the client, ~60 s on the server; histogram:
2-3 s per 300 KB client, 5-7 s server) and also drive the §6.3 claim:
analysis cost scales with *input size*, so wavelet-approximated inputs
cut holistic response time.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CostModel:
    """Predicted seconds = fixed + per_mb * input_mb ** exponent."""

    fixed_s: float
    per_mb_s: float
    exponent: float = 1.0

    def predict(self, input_mb: float, speed_factor: float = 1.0) -> float:
        """Predicted duration on a node with relative speed ``speed_factor``
        (1.0 = the paper's processing client)."""
        if input_mb < 0:
            raise ValueError("input size cannot be negative")
        if speed_factor <= 0:
            raise ValueError("speed factor must be positive")
        return (self.fixed_s + self.per_mb_s * input_mb ** self.exponent) / speed_factor


# Calibrated to Table 1: ~20 s per 0.8 MB image input on the client.
IMAGING = CostModel(fixed_s=2.0, per_mb_s=22.5, exponent=1.0)
# ~2.5 s per 0.3 MB histogram input on the client.
HISTOGRAM = CostModel(fixed_s=0.3, per_mb_s=7.3, exponent=1.0)
# Lightcurves are linear and light.
LIGHTCURVE = CostModel(fixed_s=0.2, per_mb_s=1.5, exponent=1.0)
# Spectroscopy: superlinear in input (paper §6.3: "linear for short
# analyses and exponential for complex ones" — we model a power law).
SPECTROSCOPY = CostModel(fixed_s=1.0, per_mb_s=9.0, exponent=1.4)

MODELS = {
    "imaging": IMAGING,
    "histogram": HISTOGRAM,
    "lightcurve": LIGHTCURVE,
    "spectroscopy": SPECTROSCOPY,
}

#: Relative CPU speed of the paper's nodes (client 400 MHz PC = 1.0,
#: server 2x177 MHz SPARC ≈ 1/3 per analysis thread, Table 1).
SERVER_SPEED_FACTOR = 1.0 / 3.0
CLIENT_SPEED_FACTOR = 1.0


def predict(algorithm: str, input_mb: float, on_server: bool = False) -> float:
    """Predicted duration (s) of ``algorithm`` on the given node class."""
    if algorithm not in MODELS:
        raise KeyError(f"no cost model for algorithm {algorithm!r}")
    factor = SERVER_SPEED_FACTOR if on_server else CLIENT_SPEED_FACTOR
    return MODELS[algorithm].predict(input_mb, speed_factor=factor)


def approximation_speedup(algorithm: str, input_mb: float, reduction_factor: float) -> float:
    """Speedup from running on a 1/``reduction_factor``-size approximation."""
    if reduction_factor < 1:
        raise ValueError("reduction factor must be >= 1")
    full = MODELS[algorithm].predict(input_mb)
    reduced = MODELS[algorithm].predict(input_mb / reduction_factor)
    return full / max(reduced, 1e-9)
