"""Lightcurve analysis: count rate vs. time per energy band.

One of the three analysis algorithms "most frequently used in HEDC:
imaging, lightcurves and spectroscopy" (paper §2.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..rhessi.instrument import STANDARD_ENERGY_BANDS
from ..rhessi.photons import PhotonList


@dataclass(frozen=True)
class Lightcurve:
    """Count rates per time bin, one series per energy band."""

    times: np.ndarray                      # bin centers (s)
    rates: np.ndarray                      # (n_bands, n_bins) counts/s
    bands: tuple[tuple[float, float], ...]
    bin_width_s: float

    @property
    def n_bins(self) -> int:
        return self.rates.shape[1]

    def band_series(self, band_index: int) -> np.ndarray:
        return self.rates[band_index]

    def total_rate(self) -> np.ndarray:
        return self.rates.sum(axis=0)

    def peak(self) -> tuple[float, float]:
        """(time, rate) of the global maximum of the summed series."""
        total = self.total_rate()
        index = int(np.argmax(total))
        return float(self.times[index]), float(total[index])


def lightcurve(
    photons: PhotonList,
    bin_width_s: float = 4.0,
    bands: Optional[Sequence[tuple[float, float]]] = None,
    start: Optional[float] = None,
    end: Optional[float] = None,
) -> Lightcurve:
    """Compute a multi-band lightcurve from a photon list."""
    if bin_width_s <= 0:
        raise ValueError("bin width must be positive")
    chosen_bands = tuple(bands) if bands is not None else STANDARD_ENERGY_BANDS[:4]
    t0 = photons.start if start is None else start
    t1 = photons.end if end is None else end
    if t1 <= t0:
        raise ValueError("empty time range")
    n_bins = max(1, int(np.ceil((t1 - t0) / bin_width_s)))
    edges = t0 + np.arange(n_bins + 1) * bin_width_s
    rates = np.zeros((len(chosen_bands), n_bins))
    for band_row, (low, high) in enumerate(chosen_bands):
        selected = photons.select_energy(low, high).select_time(t0, edges[-1])
        counts, _edges = np.histogram(selected.times, bins=edges)
        rates[band_row] = counts / bin_width_s
    centers = (edges[:-1] + edges[1:]) / 2.0
    return Lightcurve(centers, rates, chosen_bands, bin_width_s)
