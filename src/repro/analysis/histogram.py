"""Histogram analysis — the I/O-intensive workload of the paper's §8.3.

A histogram request reads raw data and bins one attribute; computation is
cheap relative to data movement (2-3 s per 300 KB on the test client),
which is exactly the property the processing evaluation exploits to
contrast CPU-bound imaging with I/O-bound histograms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..rhessi.photons import PhotonList

SUPPORTED_ATTRIBUTES = ("energy", "time", "detector")


@dataclass(frozen=True)
class HistogramResult:
    attribute: str
    edges: np.ndarray
    counts: np.ndarray

    @property
    def total(self) -> int:
        return int(self.counts.sum())

    def mode_bin(self) -> tuple[float, float]:
        """(low, high) edges of the most populated bin."""
        index = int(np.argmax(self.counts))
        return float(self.edges[index]), float(self.edges[index + 1])


def histogram(
    photons: PhotonList,
    attribute: str = "energy",
    n_bins: int = 64,
    log_bins: Optional[bool] = None,
) -> HistogramResult:
    """Bin one photon attribute.

    Energy defaults to log-spaced bins (spectra span four decades), time
    and detector to linear bins.
    """
    if attribute not in SUPPORTED_ATTRIBUTES:
        raise ValueError(f"unsupported attribute {attribute!r}")
    if n_bins < 1:
        raise ValueError("need at least one bin")
    if attribute == "energy":
        values = photons.energies.astype(np.float64)
        use_log = True if log_bins is None else log_bins
    elif attribute == "time":
        values = photons.times
        use_log = False if log_bins is None else log_bins
    else:
        values = photons.detectors.astype(np.float64)
        use_log = False
        edges = np.arange(0.5, 10.5)
        counts, _edges = np.histogram(values, bins=edges)
        return HistogramResult(attribute, edges, counts.astype(np.int64))
    if len(values) == 0:
        edges = np.linspace(0.0, 1.0, n_bins + 1)
        return HistogramResult(attribute, edges, np.zeros(n_bins, dtype=np.int64))
    low = float(values.min())
    high = float(values.max())
    if high <= low:
        high = low + 1.0
    if use_log:
        low = max(low, 1e-3)
        edges = np.logspace(np.log10(low), np.log10(high), n_bins + 1)
    else:
        edges = np.linspace(low, high, n_bins + 1)
    counts, _edges = np.histogram(values, bins=edges)
    return HistogramResult(attribute, edges, counts.astype(np.int64))
