"""Rotating-modulation-collimator imaging via back-projection.

RHESSI has no focusing optics: each collimator casts a rotating shadow
pattern on its detector, and the source position is recovered by
*back-projection* — for every photon, add its collimator's modulation
pattern (a sinusoid across the sky in the direction the grid faced at the
photon's arrival time) to the image.  Sources reinforce where patterns
intersect.  This is the classic, genuinely CPU-bound RHESSI imaging step
(~20-60 s per image in the paper's Table 1), and it is the kernel whose
cost our processing evaluation inherits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..rhessi.instrument import COLLIMATOR_PITCHES_ARCSEC, SPIN_PERIOD_S
from ..rhessi.photons import PhotonList


@dataclass(frozen=True)
class ImageResult:
    """A reconstructed image with its world coordinates."""

    image: np.ndarray          # (n_pixels, n_pixels) float64
    extent_arcsec: float       # full field-of-view width
    center_arcsec: tuple[float, float]
    n_photons_used: int

    @property
    def n_pixels(self) -> int:
        return self.image.shape[0]

    def peak_position(self) -> tuple[float, float]:
        """Sky position (arcsec) of the brightest pixel."""
        row, column = np.unravel_index(int(np.argmax(self.image)), self.image.shape)
        half = self.extent_arcsec / 2.0
        step = self.extent_arcsec / self.n_pixels
        x = self.center_arcsec[0] - half + (column + 0.5) * step
        y = self.center_arcsec[1] - half + (row + 0.5) * step
        return x, y

    def dynamic_range(self) -> float:
        peak = float(self.image.max())
        floor = float(np.abs(self.image).mean()) or 1.0
        return peak / floor


def back_projection(
    photons: PhotonList,
    n_pixels: int = 64,
    extent_arcsec: float = 2048.0,
    center_arcsec: tuple[float, float] = (0.0, 0.0),
    detectors: Optional[list[int]] = None,
    source_position: Optional[tuple[float, float]] = None,
) -> ImageResult:
    """Back-project a photon list onto an image grid.

    ``source_position`` lets the synthetic pipeline imprint a coherent
    modulation phase for a known source (the generator does not simulate
    grid transmission itself); analyses of real detections pass the
    detected event's position estimate.
    """
    if n_pixels < 4:
        raise ValueError("n_pixels must be >= 4")
    if len(photons) == 0:
        return ImageResult(
            np.zeros((n_pixels, n_pixels)), extent_arcsec, center_arcsec, 0
        )
    chosen = detectors if detectors is not None else list(range(1, 10))
    half = extent_arcsec / 2.0
    axis = np.linspace(-half, half, n_pixels) + 0.0
    grid_x = center_arcsec[0] + axis[None, :]
    grid_y = center_arcsec[1] + axis[:, None]
    image = np.zeros((n_pixels, n_pixels))
    used = 0
    source = source_position if source_position is not None else center_arcsec
    for detector_index in chosen:
        subset = photons.select_detector(detector_index)
        if len(subset) == 0:
            continue
        pitch = COLLIMATOR_PITCHES_ARCSEC[detector_index - 1]
        # Grid orientation at each photon's arrival time.
        angles = 2.0 * np.pi * (subset.times % SPIN_PERIOD_S) / SPIN_PERIOD_S
        # Projected sky coordinate along the grid normal, per photon/pixel.
        cos_a = np.cos(angles)[:, None, None]
        sin_a = np.sin(angles)[:, None, None]
        projected = grid_x[None, :, :] * cos_a + grid_y[None, :, :] * sin_a
        source_projected = source[0] * cos_a[:, 0, 0] + source[1] * sin_a[:, 0, 0]
        # Modulation pattern: photons arrive preferentially when the source
        # sits on a grid-transmission maximum; back-project that phase.
        phase = 2.0 * np.pi * (projected - source_projected[:, None, None]) / pitch
        image += np.cos(phase).sum(axis=0)
        used += len(subset)
    if used:
        image /= used
    return ImageResult(image, extent_arcsec, center_arcsec, used)


def clean_iterations(image_result: ImageResult, n_iterations: int = 16, gain: float = 0.1) -> ImageResult:
    """A toy CLEAN pass: iteratively subtract the brightest point response.

    Included as one of the "several dozen analysis algorithms" HEDC runs
    per event (paper §2.2); it sharpens a back-projection map.
    """
    image = image_result.image.copy()
    model = np.zeros_like(image)
    sigma_pixels = max(image.shape[0] / 32.0, 1.0)
    rows = np.arange(image.shape[0])[:, None]
    columns = np.arange(image.shape[1])[None, :]
    for _iteration in range(n_iterations):
        row, column = np.unravel_index(int(np.argmax(image)), image.shape)
        peak = image[row, column]
        if peak <= 0:
            break
        beam = np.exp(
            -((rows - row) ** 2 + (columns - column) ** 2) / (2.0 * sigma_pixels ** 2)
        )
        image -= gain * peak * beam
        model[row, column] += gain * peak
    return ImageResult(
        model + image * 0.1,
        image_result.extent_arcsec,
        image_result.center_arcsec,
        image_result.n_photons_used,
    )
