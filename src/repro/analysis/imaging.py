"""Rotating-modulation-collimator imaging via back-projection.

RHESSI has no focusing optics: each collimator casts a rotating shadow
pattern on its detector, and the source position is recovered by
*back-projection* — for every photon, add its collimator's modulation
pattern (a sinusoid across the sky in the direction the grid faced at the
photon's arrival time) to the image.  Sources reinforce where patterns
intersect.  This is the classic, genuinely CPU-bound RHESSI imaging step
(~20-60 s per image in the paper's Table 1), and it is the kernel whose
cost our processing evaluation inherits.

The kernel exploits the fact that a photon influences the image only
through its *spin-phase angle* (arrival time modulo the spacecraft spin):
photons are binned into ``n_phase_bins`` rotation-phase bins, one
modulation pattern is computed per **occupied** bin at the bin's circular
mean angle, and the weighted patterns are streamed into the output image
in bounded chunks.  That replaces the naive per-photon evaluation — an
``(n_photons, n_pixels, n_pixels)`` temporary with redundant trig — with
O(K·P²) work and an O(chunk·P²) working set, K ≪ N.  The phase grid
(pixel offsets from the assumed source) is built once and shared by all
detectors; only the pitch-dependent wavenumber differs per collimator.

Accuracy bound of the binning approximation: within a bin the angle is
off by at most Δθ/2 = π/K, so a pattern value is off by at most
``2π·r/pitch · π/K`` radians of phase at sky distance ``r`` from the
source — second-order near the source peak (r → 0), which is why peak
position and dynamic range are preserved.  ``n_phase_bins=None`` disables
binning and evaluates per photon (exact, still streamed in chunks).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..rhessi.instrument import COLLIMATOR_PITCHES_ARCSEC, SPIN_PERIOD_S
from ..rhessi.photons import PhotonList

#: Default number of rotation-phase bins; preserves the unbinned result
#: within tolerance (see module docstring) while doing K ≪ N pattern
#: evaluations.
DEFAULT_PHASE_BINS = 256

#: Rows of (chunk, n_pixels, n_pixels) temporaries the streaming
#: accumulator allows itself — the bounded working set.
_CHUNK_ANGLES = 64


@dataclass(frozen=True)
class ImageResult:
    """A reconstructed image with its world coordinates."""

    image: np.ndarray          # (n_pixels, n_pixels) float64
    extent_arcsec: float       # full field-of-view width
    center_arcsec: tuple[float, float]
    n_photons_used: int

    @property
    def n_pixels(self) -> int:
        return self.image.shape[0]

    def peak_position(self) -> tuple[float, float]:
        """Sky position (arcsec) of the brightest pixel."""
        row, column = np.unravel_index(int(np.argmax(self.image)), self.image.shape)
        half = self.extent_arcsec / 2.0
        step = self.extent_arcsec / self.n_pixels
        x = self.center_arcsec[0] - half + (column + 0.5) * step
        y = self.center_arcsec[1] - half + (row + 0.5) * step
        return x, y

    def dynamic_range(self) -> float:
        peak = float(self.image.max())
        floor = float(np.abs(self.image).mean()) or 1.0
        return peak / floor


def _accumulate_patterns(
    image: np.ndarray,
    kx: np.ndarray,
    ky: np.ndarray,
    cos_angles: np.ndarray,
    sin_angles: np.ndarray,
    weights: np.ndarray,
) -> None:
    """Stream ``weights[i] * cos(kx·cosθᵢ + ky·sinθᵢ)`` into ``image``.

    Works on angle chunks so the live temporary stays at
    ``(_CHUNK_ANGLES, n_pixels, n_pixels)`` regardless of how many
    angles (photons or phase bins) are being accumulated.
    """
    for start in range(0, len(cos_angles), _CHUNK_ANGLES):
        cos_chunk = cos_angles[start:start + _CHUNK_ANGLES]
        sin_chunk = sin_angles[start:start + _CHUNK_ANGLES]
        phase = (
            cos_chunk[:, None, None] * kx[None, None, :]
            + sin_chunk[:, None, None] * ky[None, :, None]
        )
        np.cos(phase, out=phase)
        image += np.tensordot(weights[start:start + _CHUNK_ANGLES], phase, axes=1)


def back_projection(
    photons: PhotonList,
    n_pixels: int = 64,
    extent_arcsec: float = 2048.0,
    center_arcsec: tuple[float, float] = (0.0, 0.0),
    detectors: Optional[list[int]] = None,
    source_position: Optional[tuple[float, float]] = None,
    n_phase_bins: Optional[int] = DEFAULT_PHASE_BINS,
) -> ImageResult:
    """Back-project a photon list onto an image grid.

    ``source_position`` lets the synthetic pipeline imprint a coherent
    modulation phase for a known source (the generator does not simulate
    grid transmission itself); analyses of real detections pass the
    detected event's position estimate.

    ``n_phase_bins`` is the angle-binning knob: photons collapse into
    that many spin-phase bins before pattern evaluation (see module
    docstring for the accuracy bound).  ``None`` evaluates every photon
    exactly; any value still streams with a bounded working set.
    """
    if n_pixels < 4:
        raise ValueError("n_pixels must be >= 4")
    if n_phase_bins is not None and n_phase_bins < 1:
        raise ValueError("n_phase_bins must be >= 1 (or None for exact)")
    if len(photons) == 0:
        return ImageResult(
            np.zeros((n_pixels, n_pixels)), extent_arcsec, center_arcsec, 0
        )
    chosen = detectors if detectors is not None else list(range(1, 10))
    half = extent_arcsec / 2.0
    axis = np.linspace(-half, half, n_pixels) + 0.0
    source = source_position if source_position is not None else center_arcsec
    # Phase grid relative to the assumed source, shared by every detector:
    # (projected - source_projected)(θ) = x_rel·cosθ + y_rel·sinθ with
    # x_rel varying along columns and y_rel along rows.
    x_rel = (center_arcsec[0] - source[0]) + axis
    y_rel = (center_arcsec[1] - source[1]) + axis
    image = np.zeros((n_pixels, n_pixels))
    used = 0

    # Spin-phase angle of every photon, trig evaluated once for the lot.
    all_angles = 2.0 * np.pi * (photons.times % SPIN_PERIOD_S) / SPIN_PERIOD_S
    if n_phase_bins is not None:
        bin_width = 2.0 * np.pi / n_phase_bins
        all_bins = np.minimum(
            (all_angles / bin_width).astype(np.intp), n_phase_bins - 1
        )
        all_cos = np.cos(all_angles)
        all_sin = np.sin(all_angles)

    for detector_index in chosen:
        mask = photons.detectors == detector_index
        n_subset = int(np.count_nonzero(mask))
        if n_subset == 0:
            continue
        pitch = COLLIMATOR_PITCHES_ARCSEC[detector_index - 1]
        wavenumber = 2.0 * np.pi / pitch
        kx = wavenumber * x_rel
        ky = wavenumber * y_rel
        if n_phase_bins is None:
            angles = all_angles[mask]
            _accumulate_patterns(
                image, kx, ky, np.cos(angles), np.sin(angles),
                np.ones(n_subset),
            )
        else:
            bins = all_bins[mask]
            counts = np.bincount(bins, minlength=n_phase_bins)
            # Circular mean angle per occupied bin: bins are narrower than
            # π so the resultant never cancels and the mean is well defined.
            cos_sum = np.bincount(bins, weights=all_cos[mask], minlength=n_phase_bins)
            sin_sum = np.bincount(bins, weights=all_sin[mask], minlength=n_phase_bins)
            occupied = counts > 0
            mean_angles = np.arctan2(sin_sum[occupied], cos_sum[occupied])
            _accumulate_patterns(
                image, kx, ky, np.cos(mean_angles), np.sin(mean_angles),
                counts[occupied].astype(np.float64),
            )
        used += n_subset
    if used:
        image /= used
    return ImageResult(image, extent_arcsec, center_arcsec, used)


def back_projection_dense(
    photons: PhotonList,
    n_pixels: int = 64,
    extent_arcsec: float = 2048.0,
    center_arcsec: tuple[float, float] = (0.0, 0.0),
    detectors: Optional[list[int]] = None,
    source_position: Optional[tuple[float, float]] = None,
) -> ImageResult:
    """The pre-optimisation kernel: one dense ``(n_photons, P, P)``
    temporary per detector and per-photon trig.

    Kept as the numerical reference for the angle-binning tolerance tests
    and as the baseline the ``backprojection`` benchmark measures the
    streamed kernel against.  Do not use on large photon lists.
    """
    if n_pixels < 4:
        raise ValueError("n_pixels must be >= 4")
    if len(photons) == 0:
        return ImageResult(
            np.zeros((n_pixels, n_pixels)), extent_arcsec, center_arcsec, 0
        )
    chosen = detectors if detectors is not None else list(range(1, 10))
    half = extent_arcsec / 2.0
    axis = np.linspace(-half, half, n_pixels) + 0.0
    grid_x = center_arcsec[0] + axis[None, :]
    grid_y = center_arcsec[1] + axis[:, None]
    image = np.zeros((n_pixels, n_pixels))
    used = 0
    source = source_position if source_position is not None else center_arcsec
    for detector_index in chosen:
        subset = photons.select_detector(detector_index)
        if len(subset) == 0:
            continue
        pitch = COLLIMATOR_PITCHES_ARCSEC[detector_index - 1]
        # Grid orientation at each photon's arrival time.
        angles = 2.0 * np.pi * (subset.times % SPIN_PERIOD_S) / SPIN_PERIOD_S
        # Projected sky coordinate along the grid normal, per photon/pixel.
        cos_a = np.cos(angles)[:, None, None]
        sin_a = np.sin(angles)[:, None, None]
        projected = grid_x[None, :, :] * cos_a + grid_y[None, :, :] * sin_a
        source_projected = source[0] * cos_a[:, 0, 0] + source[1] * sin_a[:, 0, 0]
        # Modulation pattern: photons arrive preferentially when the source
        # sits on a grid-transmission maximum; back-project that phase.
        phase = 2.0 * np.pi * (projected - source_projected[:, None, None]) / pitch
        image += np.cos(phase).sum(axis=0)
        used += len(subset)
    if used:
        image /= used
    return ImageResult(image, extent_arcsec, center_arcsec, used)


def clean_iterations(image_result: ImageResult, n_iterations: int = 16, gain: float = 0.1) -> ImageResult:
    """A toy CLEAN pass: iteratively subtract the brightest point response.

    Included as one of the "several dozen analysis algorithms" HEDC runs
    per event (paper §2.2); it sharpens a back-projection map.
    """
    image = image_result.image.copy()
    model = np.zeros_like(image)
    sigma_pixels = max(image.shape[0] / 32.0, 1.0)
    rows = np.arange(image.shape[0])[:, None]
    columns = np.arange(image.shape[1])[None, :]
    for _iteration in range(n_iterations):
        row, column = np.unravel_index(int(np.argmax(image)), image.shape)
        peak = image[row, column]
        if peak <= 0:
            break
        beam = np.exp(
            -((rows - row) ** 2 + (columns - column) ** 2) / (2.0 * sigma_pixels ** 2)
        )
        image -= gain * peak * beam
        model[row, column] += gain * peak
    return ImageResult(
        model + image * 0.1,
        image_result.extent_arcsec,
        image_result.center_arcsec,
        image_result.n_photons_used,
    )
