"""Analysis kernels: the "SSW routines" of the reproduction.

Imaging (back-projection), lightcurves, spectrograms and histograms, plus
the cost models the PL's estimation phase uses.
"""

from .cost import (
    CLIENT_SPEED_FACTOR,
    HISTOGRAM,
    IMAGING,
    LIGHTCURVE,
    MODELS,
    SERVER_SPEED_FACTOR,
    SPECTROSCOPY,
    CostModel,
    approximation_speedup,
    predict,
)
from .histogram import SUPPORTED_ATTRIBUTES, HistogramResult, histogram
from .imaging import (
    DEFAULT_PHASE_BINS,
    ImageResult,
    back_projection,
    back_projection_dense,
    clean_iterations,
)
from .lightcurve import Lightcurve, lightcurve
from .products import (
    AnalysisProduct,
    parse_pgm,
    render_pgm,
    render_series_pgm,
)
from .spectrogram import Spectrogram, spectrogram

__all__ = [
    "AnalysisProduct",
    "CLIENT_SPEED_FACTOR",
    "CostModel",
    "DEFAULT_PHASE_BINS",
    "HISTOGRAM",
    "HistogramResult",
    "IMAGING",
    "ImageResult",
    "LIGHTCURVE",
    "Lightcurve",
    "MODELS",
    "SERVER_SPEED_FACTOR",
    "SPECTROSCOPY",
    "SUPPORTED_ATTRIBUTES",
    "Spectrogram",
    "approximation_speedup",
    "back_projection",
    "back_projection_dense",
    "clean_iterations",
    "histogram",
    "lightcurve",
    "parse_pgm",
    "predict",
    "render_pgm",
    "render_series_pgm",
    "spectrogram",
]
