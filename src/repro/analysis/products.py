"""Analysis products: rendering results to image files.

Derived data in HEDC is "mostly images" (paper §4.1) — every analysis run
attaches pictoral content (plus parameters and a log) to its ANA tuple.
We render to PGM/PPM (portable graymap/pixmap), a real image format we can
write from scratch without external imaging libraries.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Optional, Union

import numpy as np


def render_pgm(array: np.ndarray) -> bytes:
    """Render a 2-D array as an 8-bit binary PGM (P5) image."""
    if array.ndim != 2:
        raise ValueError("PGM rendering expects a 2-D array")
    data = np.asarray(array, dtype=np.float64)
    low = float(data.min())
    high = float(data.max())
    if high <= low:
        scaled = np.zeros_like(data, dtype=np.uint8)
    else:
        scaled = ((data - low) / (high - low) * 255.0).astype(np.uint8)
    height, width = scaled.shape
    header = f"P5\n{width} {height}\n255\n".encode("ascii")
    return header + scaled.tobytes()


def parse_pgm(payload: bytes) -> np.ndarray:
    """Parse a binary PGM back into a uint8 array (for tests and clients)."""
    if not payload.startswith(b"P5"):
        raise ValueError("not a binary PGM")
    parts = payload.split(b"\n", 3)
    if len(parts) < 4:
        raise ValueError("truncated PGM header")
    width, height = (int(token) for token in parts[1].split())
    pixels = np.frombuffer(parts[3][: width * height], dtype=np.uint8)
    if len(pixels) != width * height:
        raise ValueError("truncated PGM data")
    return pixels.reshape(height, width)


def render_series_pgm(values: np.ndarray, height: int = 64) -> bytes:
    """Render a 1-D series (lightcurve, histogram) as a bar-plot PGM."""
    values = np.asarray(values, dtype=np.float64)
    if values.ndim != 1 or len(values) == 0:
        raise ValueError("expected a non-empty 1-D series")
    peak = float(values.max())
    canvas = np.zeros((height, len(values)), dtype=np.float64)
    if peak > 0:
        bar_heights = np.clip((values / peak * height).astype(int), 0, height)
        for column, bar in enumerate(bar_heights):
            if bar > 0:
                canvas[height - bar:, column] = 1.0
    return render_pgm(canvas)


@dataclass
class AnalysisProduct:
    """The file bundle one analysis produces (paper §4.1).

    Importing an analysis means "storing and referencing multiple files:
    algorithm parameters, process log, resulting images".
    """

    algorithm: str
    parameters: dict[str, Any]
    image_payloads: list[bytes] = field(default_factory=list)
    log_lines: list[str] = field(default_factory=list)
    summary: dict[str, Any] = field(default_factory=dict)

    def add_image(self, payload: bytes) -> None:
        self.image_payloads.append(payload)

    def log(self, message: str) -> None:
        self.log_lines.append(message)

    def write_bundle(self, directory: Union[str, Path], stem: str) -> list[Path]:
        """Write the parameter/log/image files; returns the created paths."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        created: list[Path] = []
        params_path = directory / f"{stem}.params.json"
        params_path.write_text(
            json.dumps(
                {"algorithm": self.algorithm, "parameters": self.parameters,
                 "summary": self.summary},
                indent=2,
                sort_keys=True,
            )
        )
        created.append(params_path)
        log_path = directory / f"{stem}.log"
        log_path.write_text("\n".join(self.log_lines) + ("\n" if self.log_lines else ""))
        created.append(log_path)
        for image_index, payload in enumerate(self.image_payloads):
            image_path = directory / f"{stem}.{image_index:02d}.pgm"
            image_path.write_bytes(payload)
            created.append(image_path)
        return created
