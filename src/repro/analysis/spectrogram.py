"""Spectrogram analysis: time x energy count maps.

The Phoenix-2 catalog HEDC hosts "contains spectrograms for around 3000
identified solar events" (paper §2.2); the same analysis applies to
RHESSI photon lists.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..rhessi.instrument import ENERGY_MAX_KEV, ENERGY_MIN_KEV
from ..rhessi.photons import PhotonList


@dataclass(frozen=True)
class Spectrogram:
    """2-D counts histogram over (time, log-energy)."""

    counts: np.ndarray        # (n_energy_bins, n_time_bins)
    time_edges: np.ndarray
    energy_edges: np.ndarray  # keV, log-spaced

    @property
    def shape(self) -> tuple[int, int]:
        return self.counts.shape

    def normalized(self) -> np.ndarray:
        """Log-scaled, 0-1 normalised map (what gets rendered)."""
        scaled = np.log1p(self.counts.astype(np.float64))
        peak = scaled.max() or 1.0
        return scaled / peak

    def band_profile(self, low_kev: float, high_kev: float) -> np.ndarray:
        """Time series of counts inside one energy band."""
        mask = (self.energy_edges[:-1] >= low_kev) & (self.energy_edges[1:] <= high_kev)
        return self.counts[mask].sum(axis=0)


def spectrogram(
    photons: PhotonList,
    time_bin_s: float = 4.0,
    n_energy_bins: int = 32,
    energy_range_kev: Optional[tuple[float, float]] = None,
    start: Optional[float] = None,
    end: Optional[float] = None,
) -> Spectrogram:
    """Compute a spectrogram from a photon list."""
    if time_bin_s <= 0:
        raise ValueError("time bin must be positive")
    if n_energy_bins < 2:
        raise ValueError("need at least 2 energy bins")
    low, high = energy_range_kev or (ENERGY_MIN_KEV, ENERGY_MAX_KEV)
    t0 = photons.start if start is None else start
    t1 = photons.end if end is None else end
    if t1 <= t0:
        raise ValueError("empty time range")
    n_time_bins = max(1, int(np.ceil((t1 - t0) / time_bin_s)))
    time_edges = t0 + np.arange(n_time_bins + 1) * time_bin_s
    energy_edges = np.logspace(np.log10(low), np.log10(high), n_energy_bins + 1)
    counts, _xedges, _yedges = np.histogram2d(
        photons.energies.astype(np.float64),
        photons.times,
        bins=[energy_edges, time_edges],
    )
    return Spectrogram(counts, time_edges, energy_edges)
