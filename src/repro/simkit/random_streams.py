"""Independent, reproducible random-number streams for simulation models.

Each logical source of randomness in a model (inter-arrival times, service
times, routing) gets its own stream so that changing one part of a model
does not perturb the random sequence seen by another (common random
numbers / variance reduction).
"""

from __future__ import annotations

import math
import random
from typing import Optional


class RandomStream:
    """A named, seeded random stream with the distributions models need."""

    def __init__(self, seed: int, name: str = ""):
        self.name = name
        self._rng = random.Random(seed)

    def uniform(self, low: float = 0.0, high: float = 1.0) -> float:
        return self._rng.uniform(low, high)

    def exponential(self, mean: float) -> float:
        if mean <= 0:
            raise ValueError("mean must be positive")
        return self._rng.expovariate(1.0 / mean)

    def normal(self, mean: float, stdev: float) -> float:
        return self._rng.gauss(mean, stdev)

    def lognormal(self, mean: float, cv: float) -> float:
        """Lognormal with the given arithmetic mean and coefficient of variation."""
        if mean <= 0:
            raise ValueError("mean must be positive")
        sigma2 = math.log(1.0 + cv * cv)
        mu = math.log(mean) - sigma2 / 2.0
        return self._rng.lognormvariate(mu, math.sqrt(sigma2))

    def triangular(self, low: float, high: float, mode: Optional[float] = None) -> float:
        return self._rng.triangular(low, high, mode)

    def randint(self, low: int, high: int) -> int:
        return self._rng.randint(low, high)

    def choice(self, sequence):
        return self._rng.choice(sequence)

    def poisson(self, mean: float) -> int:
        """Poisson variate via inversion (adequate for small means)."""
        if mean < 0:
            raise ValueError("mean must be non-negative")
        if mean > 700:
            # Normal approximation to avoid underflow for large means.
            return max(0, round(self._rng.gauss(mean, math.sqrt(mean))))
        threshold = math.exp(-mean)
        count, product = 0, self._rng.random()
        while product > threshold:
            count += 1
            product *= self._rng.random()
        return count


class StreamFactory:
    """Derives independent named streams from a master seed."""

    def __init__(self, master_seed: int = 0):
        self._master_seed = master_seed

    def stream(self, name: str) -> RandomStream:
        derived = hash((self._master_seed, name)) & 0x7FFFFFFF
        return RandomStream(derived, name)
