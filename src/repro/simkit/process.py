"""Generator-based processes for the simulation kernel.

A process is a Python generator that yields *waitables*:

* a ``float`` — hold for that many time units;
* a :class:`Future` — resume when the future resolves;
* an :class:`AllOf` — resume when every future in a set resolves.

The scheduler drives the generator, resuming it with the value carried by
the waitable (``Future.value``), mirroring the structure of SimPy-style
process interaction without any external dependency.
"""

from __future__ import annotations

from typing import Any, Generator, Iterable, Optional

from .events import Simulator, SimulationError

Waitable = Any
ProcessGenerator = Generator[Waitable, Any, Any]


class Interrupted(Exception):
    """Raised inside a process when :meth:`Process.interrupt` is called."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Future:
    """A one-shot value container that processes can wait on."""

    __slots__ = ("_sim", "_done", "_value", "_callbacks")

    def __init__(self, sim: Simulator):
        self._sim = sim
        self._done = False
        self._value: Any = None
        self._callbacks: list = []

    @property
    def done(self) -> bool:
        return self._done

    @property
    def value(self) -> Any:
        if not self._done:
            raise SimulationError("future not resolved yet")
        return self._value

    def resolve(self, value: Any = None) -> None:
        """Resolve the future, waking all waiters at the current time."""
        if self._done:
            raise SimulationError("future already resolved")
        self._done = True
        self._value = value
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)

    def add_callback(self, callback) -> None:
        if self._done:
            callback(self)
        else:
            self._callbacks.append(callback)


class AllOf:
    """Waitable that resolves when all component futures have resolved."""

    def __init__(self, futures: Iterable[Future]):
        self.futures = list(futures)


class Process:
    """Drives a generator as a simulation process.

    The process's :attr:`result` future resolves with the generator's
    return value when it finishes.
    """

    def __init__(self, sim: Simulator, generator: ProcessGenerator, name: str = ""):
        self._sim = sim
        self._generator = generator
        self.name = name or repr(generator)
        self.result = Future(sim)
        self._waiting_on: Optional[object] = None
        self._interrupt_cause: Optional[Interrupted] = None
        sim.schedule(0.0, lambda: self._resume(None))

    @property
    def alive(self) -> bool:
        return not self.result.done

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupted` into the process at the current time."""
        if not self.alive:
            return
        self._interrupt_cause = Interrupted(cause)
        self._sim.schedule(0.0, self._deliver_interrupt)

    def _deliver_interrupt(self) -> None:
        if not self.alive or self._interrupt_cause is None:
            return
        cause, self._interrupt_cause = self._interrupt_cause, None
        waiting, self._waiting_on = self._waiting_on, None
        if isinstance(waiting, object) and hasattr(waiting, "cancel"):
            waiting.cancel()
        try:
            item = self._generator.throw(cause)
        except StopIteration as stop:
            self.result.resolve(stop.value)
            return
        self._wait_on(item)

    def _resume(self, value: Any) -> None:
        if not self.alive:
            return
        self._waiting_on = None
        try:
            item = self._generator.send(value)
        except StopIteration as stop:
            self.result.resolve(stop.value)
            return
        self._wait_on(item)

    def _wait_on(self, item: Waitable) -> None:
        if isinstance(item, (int, float)):
            self._waiting_on = self._sim.schedule(float(item), lambda: self._resume(None))
        elif isinstance(item, Future):
            item.add_callback(lambda future: self._resume(future.value))
        elif isinstance(item, Process):
            item.result.add_callback(lambda future: self._resume(future.value))
        elif isinstance(item, AllOf):
            self._wait_all(item)
        else:
            raise SimulationError(f"process yielded unsupported waitable: {item!r}")

    def _wait_all(self, group: AllOf) -> None:
        pending = [future for future in group.futures if not future.done]
        if not pending:
            self._resume([future.value for future in group.futures])
            return
        remaining = {"count": len(pending)}

        def on_done(_future: Future) -> None:
            remaining["count"] -= 1
            if remaining["count"] == 0:
                self._resume([future.value for future in group.futures])

        for future in pending:
            future.add_callback(on_done)


def spawn(sim: Simulator, generator: ProcessGenerator, name: str = "") -> Process:
    """Start a generator as a process on ``sim``."""
    return Process(sim, generator, name)
