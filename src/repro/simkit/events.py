"""Core discrete-event simulation loop.

The simulator maintains a priority queue of timestamped events.  Events with
equal timestamps fire in (priority, insertion-order) order so runs are fully
deterministic.  Higher layers (:mod:`repro.simkit.process`,
:mod:`repro.simkit.resources`) build generator-based processes and queueing
resources on top of this loop.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Optional


class SimulationError(Exception):
    """Raised for misuse of the simulation kernel."""


@dataclass(order=True)
class _ScheduledEvent:
    time: float
    priority: int
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class EventHandle:
    """Handle returned by :meth:`Simulator.schedule`; allows cancellation."""

    __slots__ = ("_event",)

    def __init__(self, event: _ScheduledEvent):
        self._event = event

    @property
    def time(self) -> float:
        return self._event.time

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        self._event.cancelled = True


class Simulator:
    """A deterministic discrete-event simulator.

    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(5.0, lambda: fired.append(sim.now))
    >>> sim.run()
    >>> fired
    [5.0]
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._queue: list[_ScheduledEvent] = []
        self._seq = 0
        self._running = False

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    def schedule(
        self,
        delay: float,
        callback: Callable[[], None],
        priority: int = 0,
    ) -> EventHandle:
        """Schedule ``callback`` to fire ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        event = _ScheduledEvent(self._now + delay, priority, self._seq, callback)
        self._seq += 1
        heapq.heappush(self._queue, event)
        return EventHandle(event)

    def schedule_at(
        self,
        time: float,
        callback: Callable[[], None],
        priority: int = 0,
    ) -> EventHandle:
        """Schedule ``callback`` at absolute simulation time ``time``."""
        return self.schedule(time - self._now, callback, priority)

    def peek(self) -> Optional[float]:
        """Time of the next pending event, or None if the queue is empty."""
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0].time if self._queue else None

    def step(self) -> bool:
        """Fire the next event.  Returns False when no events remain."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            if event.time < self._now:
                raise SimulationError("event queue corrupted: time went backwards")
            self._now = event.time
            event.callback()
            return True
        return False

    def run(self, until: Optional[float] = None) -> None:
        """Run until the event queue drains or ``until`` is reached.

        When ``until`` is given, simulation time is advanced to exactly
        ``until`` even if the last event fires earlier.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        try:
            while True:
                next_time = self.peek()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    break
                self.step()
            if until is not None and until > self._now:
                self._now = until
        finally:
            self._running = False
