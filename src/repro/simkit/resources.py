"""Queueing resources for the simulation kernel.

Two disciplines cover the performance models in the paper's evaluation:

* :class:`ProcessorSharing` — a multi-core CPU under round-robin/processor
  sharing; throughput of each in-flight job degrades as load grows.  This
  is what produces the degradation slope of Figure 4.
* :class:`FcfsServer` — a first-come-first-served station with ``k``
  servers (database connections, disks, network links).
"""

from __future__ import annotations

from collections import deque
from typing import Optional, Sequence

from .events import EventHandle, Simulator
from .process import AllOf, Future
from .stats import Tally, TimeWeighted


class ProcessorSharing:
    """A processor-sharing station with ``cores`` cores of speed ``speed``.

    Each job carries a fixed amount of *work* (seconds of single-core CPU
    time).  With ``n`` jobs in service, each receives service rate
    ``speed * min(1, cores / n)``.  ``service(work)`` returns a
    :class:`~repro.simkit.process.Future` that resolves when the job's work
    is exhausted.
    """

    def __init__(self, sim: Simulator, cores: int = 1, speed: float = 1.0, name: str = "cpu"):
        if cores < 1:
            raise ValueError("cores must be >= 1")
        if speed <= 0:
            raise ValueError("speed must be positive")
        self._sim = sim
        self.cores = cores
        self.speed = speed
        self.name = name
        self._jobs: list[dict] = []
        self._last_update = sim.now
        self._completion: Optional[EventHandle] = None
        self.utilization = TimeWeighted(sim)
        self.load = TimeWeighted(sim)
        self.completed_jobs = 0
        self.busy_time = 0.0

    def _rate_per_job(self, n_jobs: int) -> float:
        if n_jobs == 0:
            return 0.0
        return self.speed * min(1.0, self.cores / n_jobs)

    def _advance(self) -> None:
        """Account for service delivered since the last state change."""
        elapsed = self._sim.now - self._last_update
        if elapsed > 0 and self._jobs:
            rate = self._rate_per_job(len(self._jobs))
            for job in self._jobs:
                job["remaining"] -= elapsed * rate
            busy_cores = min(len(self._jobs), self.cores)
            self.busy_time += elapsed * busy_cores / self.cores
        self._last_update = self._sim.now

    def _reschedule(self) -> None:
        if self._completion is not None:
            self._completion.cancel()
            self._completion = None
        self.utilization.record(min(len(self._jobs), self.cores) / self.cores)
        self.load.record(len(self._jobs))
        if not self._jobs:
            return
        rate = self._rate_per_job(len(self._jobs))
        shortest = min(job["remaining"] for job in self._jobs)
        delay = max(0.0, shortest / rate)
        self._completion = self._sim.schedule(delay, self._on_completion)

    def _on_completion(self) -> None:
        self._completion = None
        self._advance()
        epsilon = 1e-12
        finished = [job for job in self._jobs if job["remaining"] <= epsilon]
        self._jobs = [job for job in self._jobs if job["remaining"] > epsilon]
        self._reschedule()
        for job in finished:
            self.completed_jobs += 1
            job["future"].resolve(self._sim.now - job["start"])

    def service(self, work: float) -> Future:
        """Submit a job needing ``work`` seconds of single-core time."""
        if work < 0:
            raise ValueError("work must be non-negative")
        future = Future(self._sim)
        if work == 0:
            self._sim.schedule(0.0, lambda: future.resolve(0.0))
            return future
        self._advance()
        self._jobs.append({"remaining": work, "future": future, "start": self._sim.now})
        self._reschedule()
        return future

    @property
    def in_service(self) -> int:
        return len(self._jobs)


class FcfsServer:
    """A ``k``-server FCFS station.

    ``request(service_time)`` returns a future that resolves when the job
    has both waited for a free server and completed its service.
    """

    def __init__(self, sim: Simulator, servers: int = 1, name: str = "server"):
        if servers < 1:
            raise ValueError("servers must be >= 1")
        self._sim = sim
        self.servers = servers
        self.name = name
        self._busy = 0
        self._queue: deque[tuple[float, Future, float]] = deque()
        self.utilization = TimeWeighted(sim)
        self.queue_length = TimeWeighted(sim)
        self.completed_jobs = 0
        self.busy_time = 0.0
        self._last_update = sim.now

    def _record(self) -> None:
        elapsed = self._sim.now - self._last_update
        self.busy_time += elapsed * self._busy / self.servers
        self._last_update = self._sim.now
        self.utilization.record(self._busy / self.servers)
        self.queue_length.record(len(self._queue))

    def request(self, service_time: float) -> Future:
        if service_time < 0:
            raise ValueError("service_time must be non-negative")
        future = Future(self._sim)
        self._record()
        if self._busy < self.servers:
            self._start(service_time, future, self._sim.now)
        else:
            self._queue.append((service_time, future, self._sim.now))
        return future

    def _start(self, service_time: float, future: Future, arrival: float) -> None:
        self._busy += 1
        self._record()

        def finish() -> None:
            self._record()
            self._busy -= 1
            self.completed_jobs += 1
            if self._queue:
                next_service, next_future, next_arrival = self._queue.popleft()
                self._start(next_service, next_future, next_arrival)
            self._record()
            future.resolve(self._sim.now - arrival)

        self._sim.schedule(service_time, finish)

    @property
    def busy(self) -> int:
        return self._busy

    @property
    def queued(self) -> int:
        return len(self._queue)


class PriorityFcfsServer:
    """A ``k``-server station with strict-priority classes and a bounded
    queue — the discrete-event counterpart of the web tier's admission
    controller (:mod:`repro.web.scheduler`).

    ``request(service_time, priority)`` takes a priority (lower number =
    more important); when every server is busy the job waits in its
    class's FCFS queue, drained most-important-first.  With ``max_queue``
    set, a full queue sheds the *newest* waiting job of a strictly less
    important class to admit a more important arrival, otherwise the
    arrival itself is shed.  Shed jobs resolve their future to ``None``,
    so a client process distinguishes completion from rejection by the
    yielded value.
    """

    def __init__(
        self,
        sim: Simulator,
        servers: int = 1,
        max_queue: Optional[int] = None,
        name: str = "server",
    ):
        if servers < 1:
            raise ValueError("servers must be >= 1")
        if max_queue is not None and max_queue < 1:
            raise ValueError("max_queue must be >= 1 (or None for unbounded)")
        self._sim = sim
        self.servers = servers
        self.max_queue = max_queue
        self.name = name
        self._busy = 0
        self._queues: dict[int, deque[tuple[float, Future, float]]] = {}
        self.utilization = TimeWeighted(sim)
        self.queue_length = TimeWeighted(sim)
        self.completed_jobs = 0
        self.shed_jobs: dict[int, int] = {}
        self.waits: dict[int, Tally] = {}
        self.busy_time = 0.0
        self._last_update = sim.now

    def _record(self) -> None:
        elapsed = self._sim.now - self._last_update
        self.busy_time += elapsed * self._busy / self.servers
        self._last_update = self._sim.now
        self.utilization.record(self._busy / self.servers)
        self.queue_length.record(self.queued)

    @property
    def busy(self) -> int:
        return self._busy

    @property
    def queued(self) -> int:
        return sum(len(queue) for queue in self._queues.values())

    def _shed(self, future: Future, priority: int) -> None:
        self.shed_jobs[priority] = self.shed_jobs.get(priority, 0) + 1
        future.resolve(None)

    def request(self, service_time: float, priority: int = 0) -> Future:
        if service_time < 0:
            raise ValueError("service_time must be non-negative")
        future = Future(self._sim)
        self._record()
        if self._busy < self.servers:
            self._start(service_time, future, self._sim.now, priority)
            return future
        if self.max_queue is not None and self.queued >= self.max_queue:
            victim = self._evict_lower_priority(priority)
            if victim is None:
                self._shed(future, priority)
                return future
            victim_future, victim_priority = victim
            self._shed(victim_future, victim_priority)
        self._queues.setdefault(priority, deque()).append(
            (service_time, future, self._sim.now)
        )
        self._record()
        return future

    def _evict_lower_priority(
        self, arriving: int
    ) -> Optional[tuple[Future, int]]:
        """Pop the newest waiting job of the least important class that
        is strictly less important than ``arriving``."""
        for priority in sorted(self._queues, reverse=True):
            if priority <= arriving:
                return None
            queue = self._queues[priority]
            if queue:
                _service, future, _arrival = queue.pop()
                return future, priority
        return None

    def _take(self) -> Optional[tuple[float, Future, float, int]]:
        for priority in sorted(self._queues):
            queue = self._queues[priority]
            if queue:
                service_time, future, arrival = queue.popleft()
                return service_time, future, arrival, priority
        return None

    def _start(self, service_time: float, future: Future, arrival: float,
               priority: int) -> None:
        self._busy += 1
        self.waits.setdefault(priority, Tally()).record(self._sim.now - arrival)
        self._record()

        def finish() -> None:
            self._record()
            self._busy -= 1
            self.completed_jobs += 1
            head = self._take()
            if head is not None:
                next_service, next_future, next_arrival, next_priority = head
                self._start(next_service, next_future, next_arrival,
                            next_priority)
            self._record()
            future.resolve(self._sim.now - arrival)

        self._sim.schedule(service_time, finish)


def scatter_gather(servers: Sequence["FcfsServer"], service_time: float) -> AllOf:
    """Fan one logical request out to every station and wait for all.

    Models a scatter-gather read against a partitioned resource: the
    caller resumes when the *slowest* branch finishes, so the returned
    :class:`~repro.simkit.process.AllOf` captures the straggler effect
    that distinguishes fan-out from a single queue visit.
    """
    if not servers:
        raise ValueError("scatter_gather needs at least one server")
    return AllOf([server.request(service_time) for server in servers])
