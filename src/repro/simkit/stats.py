"""Statistics collection for simulation runs."""

from __future__ import annotations

import math
from typing import Optional

from .events import Simulator


class Tally:
    """Running mean/variance/min/max of observed samples (Welford)."""

    def __init__(self) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def record(self, value: float) -> None:
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)

    @property
    def mean(self) -> float:
        return self._mean if self.count else 0.0

    @property
    def variance(self) -> float:
        return self._m2 / (self.count - 1) if self.count > 1 else 0.0

    @property
    def stdev(self) -> float:
        return math.sqrt(self.variance)


class TimeWeighted:
    """Time-weighted average of a piecewise-constant signal.

    ``record(v)`` notes that the signal takes value ``v`` from the current
    simulation time onward.  ``mean(until)`` integrates the signal.
    """

    def __init__(self, sim: Simulator):
        self._sim = sim
        self._area = 0.0
        self._last_time = sim.now
        self._last_value: Optional[float] = None
        self._start = sim.now

    def record(self, value: float) -> None:
        now = self._sim.now
        if self._last_value is not None:
            self._area += self._last_value * (now - self._last_time)
        self._last_time = now
        self._last_value = value

    def mean(self, until: Optional[float] = None) -> float:
        end = self._sim.now if until is None else until
        span = end - self._start
        if span <= 0:
            return self._last_value or 0.0
        area = self._area
        if self._last_value is not None and end > self._last_time:
            area += self._last_value * (end - self._last_time)
        return area / span

    @property
    def current(self) -> float:
        return self._last_value or 0.0
