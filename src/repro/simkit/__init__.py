"""Discrete-event simulation substrate.

Used by :mod:`repro.evalmodel` to reproduce the paper's testbed experiments
(Figures 4-5, Table 1) on a single machine.
"""

from .events import EventHandle, SimulationError, Simulator
from .process import AllOf, Future, Interrupted, Process, spawn
from .random_streams import RandomStream, StreamFactory
from .resources import (
    FcfsServer,
    PriorityFcfsServer,
    ProcessorSharing,
    scatter_gather,
)
from .stats import Tally, TimeWeighted

__all__ = [
    "AllOf",
    "EventHandle",
    "FcfsServer",
    "Future",
    "Interrupted",
    "PriorityFcfsServer",
    "Process",
    "ProcessorSharing",
    "RandomStream",
    "SimulationError",
    "Simulator",
    "StreamFactory",
    "Tally",
    "TimeWeighted",
    "scatter_gather",
    "spawn",
]
