"""A from-scratch subset of the FITS (Flexible Image Transport System)
format — the container format of RHESSI raw-data units (paper §2.1)."""

from .cards import BLOCK_LENGTH, CARD_LENGTH, FitsError, Header, format_card, parse_card
from .file import FitsFile, read, write
from .hdu import BinTableHDU, PrimaryHDU

__all__ = [
    "BLOCK_LENGTH",
    "BinTableHDU",
    "CARD_LENGTH",
    "FitsError",
    "FitsFile",
    "Header",
    "PrimaryHDU",
    "format_card",
    "parse_card",
    "read",
    "write",
]
