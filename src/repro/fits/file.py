"""Whole-file FITS reading and writing, with gzip support.

RHESSI raw-data units are FITS files compressed with gnu-zip (paper §2.1);
:func:`write` and :func:`read` transparently handle a ``.gz`` suffix.
"""

from __future__ import annotations

import gzip
from pathlib import Path
from typing import Sequence, Union

from .cards import FitsError, Header
from .hdu import BinTableHDU, PrimaryHDU

Hdu = Union[PrimaryHDU, BinTableHDU]


class FitsFile:
    """An ordered list of HDUs; the first must be a :class:`PrimaryHDU`."""

    def __init__(self, hdus: Sequence[Hdu] = ()):
        self.hdus: list[Hdu] = list(hdus)
        if self.hdus and not isinstance(self.hdus[0], PrimaryHDU):
            raise FitsError("first HDU must be the primary HDU")

    @property
    def primary(self) -> PrimaryHDU:
        if not self.hdus:
            raise FitsError("empty FITS file")
        return self.hdus[0]  # type: ignore[return-value]

    def tables(self) -> list[BinTableHDU]:
        return [hdu for hdu in self.hdus if isinstance(hdu, BinTableHDU)]

    def table(self, name: str) -> BinTableHDU:
        for hdu in self.tables():
            if hdu.name == name:
                return hdu
        raise FitsError(f"no table extension named {name!r}")

    def append(self, hdu: Hdu) -> None:
        if not self.hdus and not isinstance(hdu, PrimaryHDU):
            raise FitsError("first HDU must be the primary HDU")
        self.hdus.append(hdu)

    def to_bytes(self) -> bytes:
        if not self.hdus:
            raise FitsError("cannot serialize an empty FITS file")
        return b"".join(hdu.to_bytes() for hdu in self.hdus)

    @classmethod
    def from_bytes(cls, data: bytes) -> "FitsFile":
        hdus: list[Hdu] = []
        primary, position = PrimaryHDU.from_bytes(data, 0)
        hdus.append(primary)
        while position < len(data):
            # Peek at the extension type.
            header, _end = Header.from_bytes(data, position)
            xtension = str(header.get("XTENSION", "")).strip()
            if xtension == "BINTABLE":
                table, position = BinTableHDU.from_bytes(data, position)
                hdus.append(table)
            else:
                raise FitsError(f"unsupported extension {xtension!r}")
        return cls(hdus)


def write(path: Union[str, Path], fits_file: FitsFile) -> int:
    """Write (optionally gzip-compressing); returns bytes written on disk."""
    path = Path(path)
    payload = fits_file.to_bytes()
    if path.suffix == ".gz":
        # mtime=0 keeps output deterministic for checksum-based tests.
        payload = gzip.compress(payload, mtime=0)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_bytes(payload)
    return len(payload)


def read(path: Union[str, Path]) -> FitsFile:
    """Read a FITS file, transparently decompressing ``.gz``."""
    path = Path(path)
    payload = path.read_bytes()
    if path.suffix == ".gz" or payload[:2] == b"\x1f\x8b":
        payload = gzip.decompress(payload)
    return FitsFile.from_bytes(payload)
