"""FITS header cards.

A FITS header is a sequence of 80-character ASCII *cards* packed into
2880-byte blocks.  This module implements the subset of the standard the
repository needs: logical/integer/float/string values, comments, the END
card, and fixed-format value layout (value right-justified in columns
11-30 for non-strings, strings starting at column 12).
"""

from __future__ import annotations

from typing import Any, Iterator, Optional, Union

CARD_LENGTH = 80
BLOCK_LENGTH = 2880
CARDS_PER_BLOCK = BLOCK_LENGTH // CARD_LENGTH


class FitsError(Exception):
    """Malformed FITS structure."""


def _format_value(value: Any) -> str:
    if isinstance(value, bool):
        return "T".rjust(20) if value else "F".rjust(20)
    if isinstance(value, int):
        return str(value).rjust(20)
    if isinstance(value, float):
        text = repr(value)
        if "e" in text or "E" in text:
            mantissa, exponent = text.split("e" if "e" in text else "E")
            if "." not in mantissa:
                mantissa += ".0"
            text = f"{mantissa}E{int(exponent)}"
        elif "." not in text:
            text += ".0"
        return text.rjust(20)
    if isinstance(value, str):
        escaped = value.replace("'", "''")
        quoted = f"'{escaped:<8}'"  # minimum 8 chars inside quotes
        return quoted
    raise FitsError(f"cannot format header value {value!r}")


def format_card(keyword: str, value: Any = None, comment: str = "") -> str:
    """Render one 80-character card."""
    keyword = keyword.upper()
    if len(keyword) > 8:
        raise FitsError(f"keyword too long: {keyword!r}")
    if keyword in ("COMMENT", "HISTORY", ""):
        body = f"{keyword:<8}{comment}"
        return body[:CARD_LENGTH].ljust(CARD_LENGTH)
    if keyword == "END":
        return "END".ljust(CARD_LENGTH)
    if value is None:
        body = f"{keyword:<8}"
        return body[:CARD_LENGTH].ljust(CARD_LENGTH)
    formatted = _format_value(value)
    body = f"{keyword:<8}= {formatted}"
    if comment:
        body = f"{body} / {comment}"
    if len(body) > CARD_LENGTH:
        body = body[:CARD_LENGTH]
    return body.ljust(CARD_LENGTH)


def parse_card(card: str) -> tuple[str, Any, str]:
    """Parse one card into (keyword, value, comment)."""
    if len(card) != CARD_LENGTH:
        raise FitsError(f"card must be exactly 80 chars, got {len(card)}")
    keyword = card[:8].strip().upper()
    if keyword in ("COMMENT", "HISTORY", "END", ""):
        return keyword, None, card[8:].strip()
    if card[8:10] != "= ":
        return keyword, None, card[8:].strip()
    rest = card[10:]
    rest_stripped = rest.strip()
    if rest_stripped.startswith("'"):
        # Find the closing quote, honouring '' escapes.
        inside = []
        position = rest.index("'") + 1
        while position < len(rest):
            char = rest[position]
            if char == "'":
                if position + 1 < len(rest) and rest[position + 1] == "'":
                    inside.append("'")
                    position += 2
                    continue
                position += 1
                break
            inside.append(char)
            position += 1
        value: Any = "".join(inside).rstrip()
        tail = rest[position:]
    else:
        slash = rest.find("/")
        raw = rest if slash == -1 else rest[:slash]
        tail = "" if slash == -1 else rest[slash:]
        raw = raw.strip()
        if raw == "T":
            value = True
        elif raw == "F":
            value = False
        elif raw == "":
            value = None
        else:
            try:
                value = int(raw)
            except ValueError:
                try:
                    value = float(raw.replace("D", "E"))
                except ValueError as exc:
                    raise FitsError(f"cannot parse value {raw!r}") from exc
    comment = ""
    tail = tail.strip()
    if tail.startswith("/"):
        comment = tail[1:].strip()
    return keyword, value, comment


class Header:
    """An ordered FITS header with dict-style access by keyword."""

    def __init__(self) -> None:
        self._cards: list[tuple[str, Any, str]] = []

    def set(self, keyword: str, value: Any, comment: str = "") -> None:
        keyword = keyword.upper()
        for position, (existing, _value, _comment) in enumerate(self._cards):
            if existing == keyword and existing not in ("COMMENT", "HISTORY"):
                self._cards[position] = (keyword, value, comment)
                return
        self._cards.append((keyword, value, comment))

    def add_comment(self, text: str) -> None:
        self._cards.append(("COMMENT", None, text))

    def add_history(self, text: str) -> None:
        self._cards.append(("HISTORY", None, text))

    def get(self, keyword: str, default: Any = None) -> Any:
        keyword = keyword.upper()
        for existing, value, _comment in self._cards:
            if existing == keyword:
                return value
        return default

    def __getitem__(self, keyword: str) -> Any:
        sentinel = object()
        value = self.get(keyword, sentinel)
        if value is sentinel:
            raise KeyError(keyword)
        return value

    def __contains__(self, keyword: str) -> bool:
        sentinel = object()
        return self.get(keyword, sentinel) is not sentinel

    def __iter__(self) -> Iterator[tuple[str, Any, str]]:
        return iter(self._cards)

    def __len__(self) -> int:
        return len(self._cards)

    def comments(self) -> list[str]:
        return [comment for keyword, _value, comment in self._cards if keyword == "COMMENT"]

    def history(self) -> list[str]:
        return [comment for keyword, _value, comment in self._cards if keyword == "HISTORY"]

    # -- serialization -----------------------------------------------------

    def to_bytes(self) -> bytes:
        cards = [format_card(keyword, value, comment) for keyword, value, comment in self._cards]
        cards.append(format_card("END"))
        text = "".join(cards)
        padding = (-len(text)) % BLOCK_LENGTH
        return (text + " " * padding).encode("ascii")

    @classmethod
    def from_bytes(cls, data: bytes, offset: int = 0) -> tuple["Header", int]:
        """Parse a header starting at ``offset``; returns (header, end_offset)."""
        header = cls()
        position = offset
        while True:
            if position + BLOCK_LENGTH > len(data):
                raise FitsError("truncated header: no END card")
            block = data[position:position + BLOCK_LENGTH].decode("ascii")
            position += BLOCK_LENGTH
            done = False
            for card_index in range(CARDS_PER_BLOCK):
                card = block[card_index * CARD_LENGTH:(card_index + 1) * CARD_LENGTH]
                keyword, value, comment = parse_card(card)
                if keyword == "END":
                    done = True
                    break
                if keyword == "" and value is None and not comment:
                    continue
                header._cards.append((keyword, value, comment))
            if done:
                return header, position
