"""FITS HDUs: primary image HDU and binary-table extension.

Implements the parts of the FITS standard RHESSI data needs:

* :class:`PrimaryHDU` — n-dimensional numeric array (BITPIX 8/16/32/64/
  -32/-64), big-endian on disk, data padded to 2880-byte blocks.
* :class:`BinTableHDU` — XTENSION='BINTABLE' with TFORM codes ``J`` (int32),
  ``K`` (int64), ``E`` (float32), ``D`` (float64) and ``rA`` (fixed-width
  ASCII), one element per cell.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from .cards import BLOCK_LENGTH, FitsError, Header

_BITPIX_TO_DTYPE = {
    8: np.dtype(">u1"),
    16: np.dtype(">i2"),
    32: np.dtype(">i4"),
    64: np.dtype(">i8"),
    -32: np.dtype(">f4"),
    -64: np.dtype(">f8"),
}
_DTYPE_TO_BITPIX = {
    np.dtype("uint8"): 8,
    np.dtype("int16"): 16,
    np.dtype("int32"): 32,
    np.dtype("int64"): 64,
    np.dtype("float32"): -32,
    np.dtype("float64"): -64,
}


def _pad(data: bytes) -> bytes:
    padding = (-len(data)) % BLOCK_LENGTH
    return data + b"\x00" * padding


class PrimaryHDU:
    """The primary header-data unit (an optional n-d numeric array)."""

    def __init__(self, data: Optional[np.ndarray] = None, header: Optional[Header] = None):
        self.data = data
        self.header = header or Header()

    def to_bytes(self) -> bytes:
        header = Header()
        header.set("SIMPLE", True, "conforms to FITS standard")
        if self.data is None:
            header.set("BITPIX", 8)
            header.set("NAXIS", 0)
        else:
            native = self.data
            bitpix = _DTYPE_TO_BITPIX.get(np.dtype(native.dtype.name))
            if bitpix is None:
                raise FitsError(f"unsupported array dtype {native.dtype}")
            header.set("BITPIX", bitpix)
            header.set("NAXIS", native.ndim)
            # FITS axis order is Fortran-style: NAXIS1 varies fastest.
            for axis_index, length in enumerate(reversed(native.shape)):
                header.set(f"NAXIS{axis_index + 1}", int(length))
        for keyword, value, comment in self.header:
            if keyword not in ("SIMPLE", "BITPIX", "NAXIS") and not keyword.startswith("NAXIS"):
                header._cards.append((keyword, value, comment))
        out = header.to_bytes()
        if self.data is not None:
            disk_dtype = _BITPIX_TO_DTYPE[_DTYPE_TO_BITPIX[np.dtype(self.data.dtype.name)]]
            out += _pad(np.ascontiguousarray(self.data, dtype=disk_dtype).tobytes())
        return out

    @classmethod
    def from_bytes(cls, data: bytes, offset: int = 0) -> tuple["PrimaryHDU", int]:
        header, position = Header.from_bytes(data, offset)
        if header.get("SIMPLE") is not True:
            raise FitsError("primary HDU must begin with SIMPLE = T")
        naxis = header.get("NAXIS", 0)
        array: Optional[np.ndarray] = None
        if naxis:
            bitpix = header["BITPIX"]
            dtype = _BITPIX_TO_DTYPE.get(bitpix)
            if dtype is None:
                raise FitsError(f"unsupported BITPIX {bitpix}")
            shape = tuple(
                int(header[f"NAXIS{axis_index}"]) for axis_index in range(naxis, 0, -1)
            )
            count = int(np.prod(shape))
            nbytes = count * dtype.itemsize
            raw = data[position:position + nbytes]
            if len(raw) < nbytes:
                raise FitsError("truncated primary data")
            array = np.frombuffer(raw, dtype=dtype).reshape(shape).astype(dtype.newbyteorder("="))
            position += nbytes + ((-nbytes) % BLOCK_LENGTH)
        hdu = cls(array)
        hdu.header = header
        return hdu, position


_TFORM_DTYPES = {
    "J": np.dtype(">i4"),
    "K": np.dtype(">i8"),
    "E": np.dtype(">f4"),
    "D": np.dtype(">f8"),
}


class BinTableHDU:
    """A binary table: named columns of equal length."""

    def __init__(
        self,
        names: Sequence[str],
        columns: Sequence[np.ndarray],
        name: str = "",
        header: Optional[Header] = None,
    ):
        if len(names) != len(columns):
            raise FitsError("names/columns length mismatch")
        lengths = {len(column) for column in columns}
        if len(lengths) > 1:
            raise FitsError(f"columns have differing lengths: {sorted(lengths)}")
        self.names = list(names)
        self.columns = [np.asarray(column) for column in columns]
        self.name = name
        self.header = header or Header()

    def __len__(self) -> int:
        return len(self.columns[0]) if self.columns else 0

    def column(self, name: str) -> np.ndarray:
        try:
            return self.columns[self.names.index(name)]
        except ValueError as exc:
            raise FitsError(f"no column named {name!r}") from exc

    def _tforms(self) -> list[tuple[str, np.dtype, int]]:
        """(tform, disk dtype, width) per column."""
        specs = []
        for column in self.columns:
            kind = column.dtype.kind
            if kind in ("U", "S"):
                width = int(column.dtype.itemsize if kind == "S" else column.dtype.itemsize // 4)
                specs.append((f"{width}A", np.dtype(f"S{width}"), width))
            elif kind == "i" and column.dtype.itemsize <= 4:
                specs.append(("J", _TFORM_DTYPES["J"], 4))
            elif kind == "i":
                specs.append(("K", _TFORM_DTYPES["K"], 8))
            elif kind == "f" and column.dtype.itemsize <= 4:
                specs.append(("E", _TFORM_DTYPES["E"], 4))
            elif kind == "f":
                specs.append(("D", _TFORM_DTYPES["D"], 8))
            else:
                raise FitsError(f"unsupported column dtype {column.dtype}")
        return specs

    def to_bytes(self) -> bytes:
        specs = self._tforms()
        row_width = sum(width for _tform, _dtype, width in specs)
        header = Header()
        header.set("XTENSION", "BINTABLE", "binary table extension")
        header.set("BITPIX", 8)
        header.set("NAXIS", 2)
        header.set("NAXIS1", row_width, "bytes per row")
        header.set("NAXIS2", len(self), "number of rows")
        header.set("PCOUNT", 0)
        header.set("GCOUNT", 1)
        header.set("TFIELDS", len(self.columns))
        if self.name:
            header.set("EXTNAME", self.name)
        for column_index, (column_name, (tform, _dtype, _width)) in enumerate(
            zip(self.names, specs), start=1
        ):
            header.set(f"TTYPE{column_index}", column_name)
            header.set(f"TFORM{column_index}", tform)
        for keyword, value, comment in self.header:
            header._cards.append((keyword, value, comment))
        # Build a structured record array and serialize row-major.
        record_dtype = np.dtype(
            [(name_, spec[1]) for name_, spec in zip(self.names, specs)]
        )
        records = np.zeros(len(self), dtype=record_dtype)
        for column_name, column, (tform, dtype, _width) in zip(self.names, self.columns, specs):
            if dtype.kind == "S":
                records[column_name] = np.char.encode(column.astype("U"), "ascii")
            else:
                records[column_name] = column
        return header.to_bytes() + _pad(records.tobytes())

    @classmethod
    def from_bytes(cls, data: bytes, offset: int = 0) -> tuple["BinTableHDU", int]:
        header, position = Header.from_bytes(data, offset)
        if header.get("XTENSION", "").strip() != "BINTABLE":
            raise FitsError("not a BINTABLE extension")
        row_width = int(header["NAXIS1"])
        nrows = int(header["NAXIS2"])
        nfields = int(header["TFIELDS"])
        fields: list[tuple[str, np.dtype]] = []
        for column_index in range(1, nfields + 1):
            column_name = str(header[f"TTYPE{column_index}"]).strip()
            tform = str(header[f"TFORM{column_index}"]).strip()
            if tform.endswith("A"):
                width = int(tform[:-1] or 1)
                fields.append((column_name, np.dtype(f"S{width}")))
            elif tform in _TFORM_DTYPES:
                fields.append((column_name, _TFORM_DTYPES[tform]))
            else:
                raise FitsError(f"unsupported TFORM {tform!r}")
        record_dtype = np.dtype(fields)
        if record_dtype.itemsize != row_width:
            raise FitsError(
                f"row width mismatch: NAXIS1={row_width}, fields={record_dtype.itemsize}"
            )
        nbytes = row_width * nrows
        raw = data[position:position + nbytes]
        if len(raw) < nbytes:
            raise FitsError("truncated table data")
        records = np.frombuffer(raw, dtype=record_dtype)
        position += nbytes + ((-nbytes) % BLOCK_LENGTH)
        names = [field_name for field_name, _dtype in fields]
        columns = []
        for field_name, dtype in fields:
            column = records[field_name]
            if dtype.kind == "S":
                columns.append(np.char.decode(column, "ascii"))
            else:
                columns.append(column.astype(dtype.newbyteorder("=")))
        table = cls(names, columns, name=str(header.get("EXTNAME", "")).strip())
        table.header = header
        return table, position
