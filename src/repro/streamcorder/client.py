"""The StreamCorder fat client (paper §6.2).

"A fat Java client offering the same functionality as the HEDC
Web-interface, plus additional features": job and resource management,
request queues, local analysis, two caching strategies, progressive
analysis over wavelet views, and — because every installation is a server
clone — peer-to-peer request forwarding (§10: "requests may also be sent
to peer clients").
"""

from __future__ import annotations

import queue
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Optional, Union

from ..cache import SingleFlight
from ..dm import DataManager
from ..metadb import Comparison, Select
from ..obs import Observability, resolve as resolve_obs
from ..rhessi import PhotonList
from ..security import User
from .cache import LocalCloneCache, StaticPathCache
from .cordlets import CordletRegistry


@dataclass
class Job:
    """A queued local-processing job."""

    job_id: int
    cordlet: str
    context: dict[str, Any]
    result: Optional[dict[str, Any]] = None
    error: Optional[str] = None
    done: threading.Event = field(default_factory=threading.Event)


class StreamCorder:
    """A fat client bound to a server DM.

    ``cache_strategy`` selects version 1 ("static") or version 2
    ("clone"); the clone strategy builds a full local DataManager whose
    schema equals the server's.
    """

    def __init__(
        self,
        server_dm: DataManager,
        user: User,
        workdir: Union[str, Path],
        cache_strategy: str = "static",
        n_job_workers: int = 1,
        obs: Optional[Observability] = None,
    ):
        if cache_strategy not in ("static", "clone"):
            raise ValueError("cache_strategy must be 'static' or 'clone'")
        self.server = server_dm
        self.user = user
        self.obs = obs if obs is not None else resolve_obs(
            getattr(server_dm, "obs", None))
        self.workdir = Path(workdir)
        self.cache_strategy = cache_strategy
        self.static_cache = StaticPathCache(self.workdir / "cache", obs=self.obs)
        self.local_dm: Optional[DataManager] = None
        self.clone_cache: Optional[LocalCloneCache] = None
        if cache_strategy == "clone":
            self.local_dm = DataManager.standalone(
                self.workdir / "clone", node_name="sc", obs=self.obs)
            self.clone_cache = LocalCloneCache(self.local_dm, obs=self.obs)
        self.cordlets = CordletRegistry().load_defaults()
        self._jobs: "queue.Queue[Job]" = queue.Queue()
        self._job_counter = 0
        self._peers: list["StreamCorder"] = []
        #: Concurrent fetches of the same item download once (§6.2 jobs
        #: frequently share input units).
        self._fetch_flight = SingleFlight(obs=self.obs)
        self.downloads = 0
        self.bytes_downloaded = 0
        for worker_index in range(n_job_workers):
            threading.Thread(
                target=self._job_loop, name=f"sc-job-{worker_index}", daemon=True
            ).start()

    # -- data access with caching -----------------------------------------------

    def fetch_unit(self, unit_id: str) -> PhotonList:
        """Photon data of a raw unit, served from cache when possible."""
        item_id = f"unit:{unit_id}"
        payload = self._cached(item_id)
        if payload is None:
            def _fetch() -> bytes:
                fetched = self._download(item_id)
                self._place(item_id, f"units/{unit_id}.fits.gz", fetched)
                return fetched

            payload, leader = self._fetch_flight.do(item_id, _fetch)
            if not leader:
                self.obs.count("streamcorder.downloads_coalesced")
        import gzip

        from ..fits import FitsFile

        raw = gzip.decompress(payload) if payload[:2] == b"\x1f\x8b" else payload
        return PhotonList.from_fits(FitsFile.from_bytes(raw))

    def fetch_view_prefix(self, unit_id: str, detail_levels: int) -> tuple[bytes, int]:
        """A progressive prefix of the unit's wavelet view (partition 0).

        Returns (payload, full_bytes) so callers can report the saving.
        """
        view = self.server.process.get_view(unit_id)
        partition = view.partitions[0]
        payload = partition.stream.prefix(detail_levels)
        self._record_download(len(payload), source="view")
        return payload, partition.stream.total_bytes

    def _record_download(self, n_bytes: int, source: str) -> None:
        self.downloads += 1
        self.bytes_downloaded += n_bytes
        self.obs.count("streamcorder.downloads", source=source)
        self.obs.count("streamcorder.bytes_downloaded", n_bytes, source=source)

    def _cached(self, item_id: str) -> Optional[bytes]:
        if self.cache_strategy == "clone":
            return self.clone_cache.get(item_id)
        return self.static_cache.get("data", item_id)

    def _place(self, item_id: str, rel_path: str, payload: bytes) -> None:
        if self.cache_strategy == "clone":
            self.clone_cache.put(item_id, rel_path, payload)
        else:
            self.static_cache.put("data", item_id, payload)

    def _download(self, item_id: str) -> bytes:
        """Fetch from the server (or a peer that has the data cached)."""
        for peer in self._peers:
            peer_payload = peer._cached(item_id)
            if peer_payload is not None:
                self._record_download(len(peer_payload), source="peer")
                return peer_payload
        names = self.server.io.names.resolve_files(item_id, role="data")
        if not names:
            raise KeyError(f"server has no data for {item_id!r}")
        payload = self.server.io.read_item(names[0])
        self._record_download(len(payload), source="server")
        return payload

    # -- peer-to-peer --------------------------------------------------------------

    def add_peer(self, peer: "StreamCorder") -> None:
        self._peers.append(peer)

    # -- job management ----------------------------------------------------------------

    def submit_job(self, cordlet_name: str, context: dict[str, Any]) -> Job:
        cordlet = self.cordlets.get(cordlet_name)
        if cordlet is None:
            raise KeyError(f"no cordlet named {cordlet_name!r}")
        self._job_counter += 1
        job = Job(self._job_counter, cordlet_name, context)
        self._jobs.put(job)
        return job

    def run_job(self, cordlet_name: str, context: dict[str, Any]) -> dict[str, Any]:
        """Synchronous convenience wrapper."""
        job = self.submit_job(cordlet_name, context)
        job.done.wait(timeout=60.0)
        if job.error is not None:
            raise RuntimeError(job.error)
        if job.result is None:
            raise TimeoutError(f"job {job.job_id} did not finish")
        return job.result

    def _job_loop(self) -> None:
        while True:
            job = self._jobs.get()
            try:
                cordlet = self.cordlets.get(job.cordlet)
                job.result = cordlet.run(job.context)
            except Exception as exc:
                job.error = f"{type(exc).__name__}: {exc}"
            finally:
                job.done.set()
                self._jobs.task_done()

    # -- progressive analysis (§6.3) ------------------------------------------------------

    def progressive_lightcurve(self, unit_id: str, detail_levels: int) -> dict[str, Any]:
        """Approximate count-rate series from a view prefix, decoded
        locally — the interactive-exploration path."""
        payload, full_bytes = self.fetch_view_prefix(unit_id, detail_levels)
        result = self.run_job("progressive_view", {"payload": payload})
        result["bytes_saved"] = full_bytes - len(payload)
        result["reduction_factor"] = full_bytes / max(len(payload), 1)
        return result

    # -- uploading derived data (§4.1) ---------------------------------------------------------

    def upload_analysis(
        self,
        hle_id: int,
        cordlet_name: str,
        context: dict[str, Any],
        parameters: Optional[dict[str, Any]] = None,
        publish: bool = False,
    ) -> int:
        """Run a cordlet locally and import the result into the server.

        This is the paper's "users who upload derived data produced with
        the StreamCorder" path: the product (parameters, log, images)
        goes through the server DM's transactional analysis import, so
        uploaded data is indistinguishable from server-side analyses.
        Requires the ``upload`` right.
        """
        result = self.run_job(cordlet_name, context)
        from ..analysis import AnalysisProduct

        product = AnalysisProduct(
            f"streamcorder:{cordlet_name}", dict(parameters or {})
        )
        if "image" in result:
            product.add_image(result["image"])
        summary = {
            key: value
            for key, value in result.items()
            if isinstance(value, (int, float, str, bool))
        }
        product.summary = summary
        product.log(f"produced offline by StreamCorder cordlet {cordlet_name!r}")
        ana_id = self.server.semantic.import_analysis(
            self.user, hle_id, product, {"executed_on": "streamcorder"}
        )
        if publish:
            self.server.semantic.publish_analysis(self.user, ana_id)
        return ana_id

    # -- offline mirroring -------------------------------------------------------------------

    def mirror_hles(self, where=None, limit: Optional[int] = None) -> int:
        """Clone-cache only: copy visible HLE tuples into the local DBMS
        so offline work uses the identical schema (§6.2)."""
        if self.local_dm is None:
            raise RuntimeError("mirroring requires the clone cache strategy")
        hles = self.server.semantic.find_hles(self.user, where=where, limit=limit)
        mirrored = 0
        for hle in hles:
            existing = self.local_dm.io.execute(
                Select("hle", where=Comparison("hle_id", "=", hle["hle_id"]))
            )
            if existing:
                continue
            row = dict(hle)
            row["owner_id"] = self.local_dm.import_user.user_id
            from ..metadb import Insert

            self.local_dm.io.execute(Insert("hle", row))
            mirrored += 1
        if mirrored:
            self.obs.count("streamcorder.hles_mirrored", mirrored)
        return mirrored
