"""Cordlets: the StreamCorder's dynamically loadable modules (paper §6.2).

"The functionality is divided between basic services and dynamically
loadable modules (or cordlets) ... Modules are data-type sensitive, in
the sense that the StreamCorder offers different modules to the user
depending on the context.  The context is determined by the data type of
the view or analysis in question."
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from ..analysis import histogram, lightcurve, render_pgm, render_series_pgm
from ..rhessi import PhotonList
from ..wavelets import decode


class Cordlet:
    """A loadable module: declares which context data types it handles."""

    name = "abstract"
    data_types: tuple[str, ...] = ()

    def handles(self, data_type: str) -> bool:
        return data_type in self.data_types

    def run(self, context: dict[str, Any]) -> dict[str, Any]:
        raise NotImplementedError


class LightcurveCordlet(Cordlet):
    """Local lightcurve computation over downloaded photon data."""

    name = "lightcurve"
    data_types = ("photons",)

    def run(self, context: dict[str, Any]) -> dict[str, Any]:
        photons: PhotonList = context["photons"]
        bin_width = float(context.get("bin_width_s", 4.0))
        curve = lightcurve(photons, bin_width_s=bin_width)
        rates = curve.total_rate()
        return {
            "rates": rates,
            "image": render_series_pgm(rates),
            "peak": curve.peak(),
        }


class HistogramCordlet(Cordlet):
    name = "histogram"
    data_types = ("photons",)

    def run(self, context: dict[str, Any]) -> dict[str, Any]:
        photons: PhotonList = context["photons"]
        result = histogram(
            photons,
            attribute=context.get("attribute", "energy"),
            n_bins=int(context.get("n_bins", 64)),
        )
        return {
            "counts": result.counts,
            "edges": result.edges,
            "image": render_series_pgm(result.counts.astype(float)),
        }


class ProgressiveViewCordlet(Cordlet):
    """Progressive decode of a wavelet view prefix (§6.3): the client does
    the decoding "to minimize the load at the server"."""

    name = "progressive_view"
    data_types = ("wavelet_stream",)

    def run(self, context: dict[str, Any]) -> dict[str, Any]:
        payload: bytes = context["payload"]
        values = decode(payload)
        return {
            "values": values,
            "image": render_series_pgm(np.maximum(values, 0.0)),
            "bytes_decoded": len(payload),
        }


class DensityPlotCordlet(Cordlet):
    """Renders a density array shipped by the server's viz subsystem."""

    name = "density_plot"
    data_types = ("density_array",)

    def run(self, context: dict[str, Any]) -> dict[str, Any]:
        density: np.ndarray = np.asarray(context["density"], dtype=float)
        return {"image": render_pgm(np.log1p(density))}


class CordletRegistry:
    """Offers the modules applicable to the current context (§6.2)."""

    def __init__(self) -> None:
        self._cordlets: list[Cordlet] = []

    def load(self, cordlet: Cordlet) -> None:
        self._cordlets.append(cordlet)

    def load_defaults(self) -> "CordletRegistry":
        for cordlet in (
            LightcurveCordlet(),
            HistogramCordlet(),
            ProgressiveViewCordlet(),
            DensityPlotCordlet(),
        ):
            self.load(cordlet)
        return self

    def offered_for(self, data_type: str) -> list[Cordlet]:
        return [cordlet for cordlet in self._cordlets if cordlet.handles(data_type)]

    def get(self, name: str) -> Optional[Cordlet]:
        for cordlet in self._cordlets:
            if cordlet.name == name:
                return cordlet
        return None
