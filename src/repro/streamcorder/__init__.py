"""The StreamCorder fat client (paper §6.2): cordlets, two cache
strategies, progressive analysis and peer-to-peer data exchange."""

from .cache import CacheStats, LocalCloneCache, StaticPathCache
from .client import Job, StreamCorder
from .cordlets import (
    Cordlet,
    CordletRegistry,
    DensityPlotCordlet,
    HistogramCordlet,
    LightcurveCordlet,
    ProgressiveViewCordlet,
)

__all__ = [
    "CacheStats",
    "Cordlet",
    "CordletRegistry",
    "DensityPlotCordlet",
    "HistogramCordlet",
    "Job",
    "LightcurveCordlet",
    "LocalCloneCache",
    "ProgressiveViewCordlet",
    "StaticPathCache",
    "StreamCorder",
]
