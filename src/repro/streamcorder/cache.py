"""The StreamCorder's two caching strategies (paper §6.2).

* :class:`StaticPathCache` — "calculates a unique but static file system
  path for each data-object ... based on fixed object attributes, such as
  type and creation date, the cache structure is predetermined."
* :class:`LocalCloneCache` — "adds a local DBMS installation for dynamic
  object references and meta data caching ... cache object-retrieval and
  -placement is identical to the way the server DM handles the server-side
  data archives", making every installation a clone of the HEDC server.
"""

from __future__ import annotations

import hashlib
from pathlib import Path
from typing import Optional, Union

from ..metadb import Comparison, Select


class CacheStats:
    """Hit/miss/byte counters shared by both cache strategies."""

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.bytes_cached = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class StaticPathCache:
    """Version 1: deterministic paths from fixed object attributes."""

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.stats = CacheStats()

    def path_for(self, object_type: str, item_id: str, created_at: float = 0.0) -> Path:
        """The predetermined cache location for one data object."""
        digest = hashlib.sha1(item_id.encode()).hexdigest()[:12]
        day = int(created_at // 86_400)
        return self.root / object_type / f"d{day:06d}" / digest

    def get(self, object_type: str, item_id: str, created_at: float = 0.0) -> Optional[bytes]:
        path = self.path_for(object_type, item_id, created_at)
        if path.exists():
            self.stats.hits += 1
            return path.read_bytes()
        self.stats.misses += 1
        return None

    def put(self, object_type: str, item_id: str, payload: bytes,
            created_at: float = 0.0) -> Path:
        path = self.path_for(object_type, item_id, created_at)
        path.parent.mkdir(parents=True, exist_ok=True)
        if not path.exists():
            path.write_bytes(payload)
            self.stats.bytes_cached += len(payload)
        return path

    def contains(self, object_type: str, item_id: str, created_at: float = 0.0) -> bool:
        return self.path_for(object_type, item_id, created_at).exists()


class LocalCloneCache:
    """Version 2: a local DM (with its own DBMS and archive) as the cache.

    Retrieval and placement go through the local DM's name mapping and
    storage manager — the same code paths the server uses, because the
    local installation *is* a server clone (same schema).
    """

    def __init__(self, local_dm):
        self.dm = local_dm
        self.stats = CacheStats()

    def get(self, item_id: str) -> Optional[bytes]:
        rows = self.dm.io.execute(
            Select("loc_files", where=Comparison("item_id", "=", item_id))
        )
        if not rows:
            self.stats.misses += 1
            return None
        names = self.dm.io.names.resolve_files(item_id)
        self.stats.hits += 1
        return self.dm.io.read_item(names[0])

    def put(self, item_id: str, rel_path: str, payload: bytes) -> None:
        if self.get(item_id) is not None:
            return
        self.stats.misses -= 1  # the probe above was a placement check
        stored = self.dm.io.store_payload(rel_path, payload)
        self.dm.io.names.register_file(
            item_id, stored.archive_id, stored.rel_path,
            size_bytes=stored.size, checksum=stored.checksum,
        )
        self.stats.bytes_cached += len(payload)
