"""The StreamCorder's two caching strategies (paper §6.2).

* :class:`StaticPathCache` — "calculates a unique but static file system
  path for each data-object ... based on fixed object attributes, such as
  type and creation date, the cache structure is predetermined."
* :class:`LocalCloneCache` — "adds a local DBMS installation for dynamic
  object references and meta data caching ... cache object-retrieval and
  -placement is identical to the way the server DM handles the server-side
  data archives", making every installation a clone of the HEDC server.

Both keep their public API but delegate index bookkeeping, eviction and
statistics to the unified :class:`repro.cache.Cache` core: the static
strategy gains an optional byte budget (evicted entries unlink their
backing file), and both report through the shared
:class:`repro.cache.CacheStats` — still mirrored to the registry under
the historical ``streamcorder.cache.*`` names, labelled by strategy.
"""

from __future__ import annotations

import hashlib
from pathlib import Path
from typing import Optional, Union

from ..cache import Cache, CacheStats
from ..metadb import Comparison, Select
from ..obs import Observability, resolve as resolve_obs


def _strategy_stats(strategy: str, obs: Optional[Observability]) -> CacheStats:
    return CacheStats(
        f"streamcorder.{strategy}", obs=obs,
        metric_prefix="streamcorder.cache", labels={"strategy": strategy},
    )


class StaticPathCache:
    """Version 1: deterministic paths from fixed object attributes.

    ``max_bytes`` bounds the resident payload bytes; hitting the budget
    evicts least-recently-used entries and unlinks their files.
    """

    def __init__(self, root: Union[str, Path],
                 obs: Optional[Observability] = None,
                 max_bytes: Optional[int] = None):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        resolved = resolve_obs(obs)
        self.stats = _strategy_stats("static", resolved)
        self._index: Cache = Cache(
            "streamcorder.static", max_bytes=max_bytes, policy="lru",
            obs=resolved, stats=self.stats, on_evict=self._on_removed,
        )

    def _on_removed(self, key: str, path: Path, reason: str) -> None:
        if reason == "evicted":
            Path(path).unlink(missing_ok=True)

    def path_for(self, object_type: str, item_id: str, created_at: float = 0.0) -> Path:
        """The predetermined cache location for one data object."""
        digest = hashlib.sha1(item_id.encode()).hexdigest()[:12]
        day = int(created_at // 86_400)
        return self.root / object_type / f"d{day:06d}" / digest

    def get(self, object_type: str, item_id: str, created_at: float = 0.0) -> Optional[bytes]:
        path = self.path_for(object_type, item_id, created_at)
        if path.exists():
            # Adopt files a previous installation left behind (the path
            # scheme is static, so the index can always be rebuilt).
            if self._index.peek(str(path), touch=True) is None:
                self._index.put(str(path), path, size=path.stat().st_size)
            self.stats.record_hit()
            return path.read_bytes()
        self.stats.record_miss()
        return None

    def put(self, object_type: str, item_id: str, payload: bytes,
            created_at: float = 0.0) -> Path:
        path = self.path_for(object_type, item_id, created_at)
        path.parent.mkdir(parents=True, exist_ok=True)
        if not path.exists():
            path.write_bytes(payload)
            self._index.put(str(path), path, size=len(payload))
        return path

    def contains(self, object_type: str, item_id: str, created_at: float = 0.0) -> bool:
        return self.path_for(object_type, item_id, created_at).exists()


class LocalCloneCache:
    """Version 2: a local DM (with its own DBMS and archive) as the cache.

    Retrieval and placement go through the local DM's name mapping and
    storage manager — the same code paths the server uses, because the
    local installation *is* a server clone (same schema).  The unified
    core keeps a presence index on top, so repeat lookups skip the local
    DBMS probe and byte accounting comes for free.
    """

    def __init__(self, local_dm, obs: Optional[Observability] = None):
        self.dm = local_dm
        resolved = obs if obs is not None else resolve_obs(getattr(local_dm, "obs", None))
        self.stats = _strategy_stats("clone", resolved)
        self._index: Cache = Cache(
            "streamcorder.clone", obs=resolved, stats=self.stats,
        )

    def _present(self, item_id: str) -> bool:
        if self._index.peek(item_id, touch=True) is not None:
            return True
        rows = self.dm.io.execute(
            Select("loc_files", where=Comparison("item_id", "=", item_id))
        )
        if rows:
            self._index.put(item_id, rows[0]["rel_path"],
                            size=rows[0].get("size_bytes") or 0)
            return True
        return False

    def get(self, item_id: str) -> Optional[bytes]:
        if not self._present(item_id):
            self.stats.record_miss()
            return None
        names = self.dm.io.names.resolve_files(item_id)
        self.stats.record_hit()
        return self.dm.io.read_item(names[0])

    def put(self, item_id: str, rel_path: str, payload: bytes) -> None:
        if self._present(item_id):
            return
        stored = self.dm.io.store_payload(rel_path, payload)
        self.dm.io.names.register_file(
            item_id, stored.archive_id, stored.rel_path,
            size_bytes=stored.size, checksum=stored.checksum,
        )
        self._index.put(item_id, stored.rel_path, size=len(payload))
