"""The StreamCorder's two caching strategies (paper §6.2).

* :class:`StaticPathCache` — "calculates a unique but static file system
  path for each data-object ... based on fixed object attributes, such as
  type and creation date, the cache structure is predetermined."
* :class:`LocalCloneCache` — "adds a local DBMS installation for dynamic
  object references and meta data caching ... cache object-retrieval and
  -placement is identical to the way the server DM handles the server-side
  data archives", making every installation a clone of the HEDC server.
"""

from __future__ import annotations

import hashlib
from pathlib import Path
from typing import Optional, Union

from ..metadb import Comparison, Select
from ..obs import Observability, resolve as resolve_obs


class CacheStats:
    """Hit/miss/byte counters shared by both cache strategies.

    When bound to an obs hub the counters are mirrored into the registry
    as ``streamcorder.cache.*`` (labelled by strategy), so the fat
    client's cache behaviour shows up next to the server metrics.
    """

    def __init__(self, obs: Optional[Observability] = None,
                 strategy: str = "static") -> None:
        self.hits = 0
        self.misses = 0
        self.bytes_cached = 0
        self._obs = obs
        self._strategy = strategy

    def record_hit(self) -> None:
        self.hits += 1
        if self._obs is not None:
            self._obs.count("streamcorder.cache.hits", strategy=self._strategy)

    def record_miss(self, n: int = 1) -> None:
        self.misses += n
        if self._obs is not None:
            self._obs.count("streamcorder.cache.misses", n, strategy=self._strategy)

    def record_cached(self, n_bytes: int) -> None:
        self.bytes_cached += n_bytes
        if self._obs is not None:
            self._obs.count("streamcorder.cache.bytes_cached", n_bytes,
                            strategy=self._strategy)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class StaticPathCache:
    """Version 1: deterministic paths from fixed object attributes."""

    def __init__(self, root: Union[str, Path],
                 obs: Optional[Observability] = None):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.stats = CacheStats(obs=resolve_obs(obs), strategy="static")

    def path_for(self, object_type: str, item_id: str, created_at: float = 0.0) -> Path:
        """The predetermined cache location for one data object."""
        digest = hashlib.sha1(item_id.encode()).hexdigest()[:12]
        day = int(created_at // 86_400)
        return self.root / object_type / f"d{day:06d}" / digest

    def get(self, object_type: str, item_id: str, created_at: float = 0.0) -> Optional[bytes]:
        path = self.path_for(object_type, item_id, created_at)
        if path.exists():
            self.stats.record_hit()
            return path.read_bytes()
        self.stats.record_miss()
        return None

    def put(self, object_type: str, item_id: str, payload: bytes,
            created_at: float = 0.0) -> Path:
        path = self.path_for(object_type, item_id, created_at)
        path.parent.mkdir(parents=True, exist_ok=True)
        if not path.exists():
            path.write_bytes(payload)
            self.stats.record_cached(len(payload))
        return path

    def contains(self, object_type: str, item_id: str, created_at: float = 0.0) -> bool:
        return self.path_for(object_type, item_id, created_at).exists()


class LocalCloneCache:
    """Version 2: a local DM (with its own DBMS and archive) as the cache.

    Retrieval and placement go through the local DM's name mapping and
    storage manager — the same code paths the server uses, because the
    local installation *is* a server clone (same schema).
    """

    def __init__(self, local_dm, obs: Optional[Observability] = None):
        self.dm = local_dm
        self.stats = CacheStats(
            obs=obs if obs is not None else resolve_obs(getattr(local_dm, "obs", None)),
            strategy="clone",
        )

    def _present(self, item_id: str) -> bool:
        return bool(self.dm.io.execute(
            Select("loc_files", where=Comparison("item_id", "=", item_id))
        ))

    def get(self, item_id: str) -> Optional[bytes]:
        if not self._present(item_id):
            self.stats.record_miss()
            return None
        names = self.dm.io.names.resolve_files(item_id)
        self.stats.record_hit()
        return self.dm.io.read_item(names[0])

    def put(self, item_id: str, rel_path: str, payload: bytes) -> None:
        if self._present(item_id):
            return
        stored = self.dm.io.store_payload(rel_path, payload)
        self.dm.io.names.register_file(
            item_id, stored.archive_id, stored.rel_path,
            size_bytes=stored.size, checksum=stored.checksum,
        )
        self.stats.record_cached(len(payload))
