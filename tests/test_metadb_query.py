"""Tests for predicates, indexes, planning and query execution."""

import random

import pytest

from repro.metadb import (
    Aggregate,
    And,
    Between,
    Column,
    ColumnType,
    Comparison,
    Database,
    In,
    Insert,
    IsNull,
    Join,
    Like,
    Not,
    Or,
    QueryError,
    SchemaError,
    Select,
    TableSchema,
    Update,
)
from repro.metadb.index import HashIndex, OrderedIndex
from repro.metadb.predicate import conjuncts, equality_on, range_on


class TestPredicates:
    def test_comparison_operators(self):
        row = {"x": 5}
        assert Comparison("x", "=", 5).matches(row)
        assert Comparison("x", "!=", 4).matches(row)
        assert Comparison("x", "<", 6).matches(row)
        assert Comparison("x", ">=", 5).matches(row)
        assert not Comparison("x", ">", 5).matches(row)

    def test_comparison_with_null_is_false(self):
        assert not Comparison("x", "=", 5).matches({"x": None})
        assert not Comparison("x", "=", None).matches({"x": 5})

    def test_unknown_operator_rejected(self):
        with pytest.raises(ValueError):
            Comparison("x", "~", 1)

    def test_between_inclusive(self):
        predicate = Between("x", 1, 3)
        assert predicate.matches({"x": 1})
        assert predicate.matches({"x": 3})
        assert not predicate.matches({"x": 4})

    def test_in_and_like(self):
        assert In("k", ["a", "b"]).matches({"k": "a"})
        assert not In("k", ["a", "b"]).matches({"k": "c"})
        assert Like("s", "fla%").matches({"s": "flare"})
        assert Like("s", "f_are").matches({"s": "flare"})
        assert not Like("s", "fla%").matches({"s": "burst"})

    def test_like_non_string_is_false(self):
        assert not Like("s", "%").matches({"s": 5})

    def test_like_rejects_trailing_newline(self):
        # Regression: a $-anchored re.match accepted "abc\n" for LIKE 'abc'.
        assert not Like("s", "abc").matches({"s": "abc\n"})
        assert not Like("s", "ab_").matches({"s": "abc\n"})
        assert Like("s", "abc").matches({"s": "abc"})
        assert Like("s", "abc%").matches({"s": "abc\n"})  # % may span newlines
        assert Like("s", "ab_").matches({"s": "ab\n"})    # _ is any single char

    def test_is_null(self):
        assert IsNull("x").matches({"x": None})
        assert IsNull("x", negated=True).matches({"x": 1})

    def test_boolean_combinators(self):
        predicate = (Comparison("a", ">", 1) & Comparison("a", "<", 5)) | Comparison("b", "=", 0)
        assert predicate.matches({"a": 3, "b": 9})
        assert predicate.matches({"a": 99, "b": 0})
        assert not predicate.matches({"a": 99, "b": 9})
        assert (~Comparison("a", "=", 1)).matches({"a": 2})

    def test_conjunct_flattening(self):
        nested = And([Comparison("a", "=", 1), And([Comparison("b", "=", 2), Comparison("c", "=", 3)])])
        assert len(conjuncts(nested)) == 3

    def test_equality_extraction(self):
        predicate = And([Comparison("a", "=", 7), Comparison("b", ">", 1)])
        assert equality_on(predicate, "a") == 7
        assert equality_on(predicate, "b") is None

    def test_range_extraction_combines_bounds(self):
        predicate = And([Comparison("x", ">=", 1), Comparison("x", "<", 10)])
        assert range_on(predicate, "x") == (1, 10, True, False)

    def test_range_extraction_from_equality(self):
        assert range_on(Comparison("x", "=", 5), "x") == (5, 5, True, True)

    def test_columns_collected(self):
        predicate = And([Comparison("a", "=", 1), Or([IsNull("b"), Like("c", "%")])])
        assert predicate.columns() == {"a", "b", "c"}


class TestIndexes:
    def test_hash_index_probe(self):
        index = HashIndex(["k"])
        index.insert(1, {"k": "x"})
        index.insert(2, {"k": "x"})
        index.insert(3, {"k": "y"})
        assert index.probe("x") == {1, 2}
        assert index.probe("missing") == set()

    def test_unique_hash_index_rejects_duplicates(self):
        from repro.metadb import IntegrityError

        index = HashIndex(["k"], unique=True)
        index.insert(1, {"k": "x"})
        with pytest.raises(IntegrityError):
            index.insert(2, {"k": "x"})

    def test_hash_index_null_bucket(self):
        index = HashIndex(["k"], unique=True)
        index.insert(1, {"k": None})
        index.insert(2, {"k": None})  # nulls never collide
        assert index.nulls() == {1, 2}

    def test_hash_index_remove(self):
        index = HashIndex(["k"])
        index.insert(1, {"k": "x"})
        index.remove(1, {"k": "x"})
        assert index.probe("x") == set()
        assert len(index) == 0

    def test_ordered_index_range_scan(self):
        index = OrderedIndex("t")
        for rowid, value in enumerate([5.0, 1.0, 3.0, 9.0, 7.0], start=1):
            index.insert(rowid, {"t": value})
        assert list(index.range(3.0, 7.0)) == [3, 1, 5]  # values 3, 5, 7

    def test_ordered_index_exclusive_bounds(self):
        index = OrderedIndex("t")
        for rowid, value in enumerate([1.0, 2.0, 3.0], start=1):
            index.insert(rowid, {"t": value})
        assert list(index.range(1.0, 3.0, low_inclusive=False, high_inclusive=False)) == [2]

    def test_ordered_index_descending_scan(self):
        index = OrderedIndex("t")
        for rowid, value in enumerate([2.0, 1.0, 3.0], start=1):
            index.insert(rowid, {"t": value})
        assert list(index.scan(descending=True)) == [3, 1, 2]

    def test_ordered_index_remove_specific_duplicate(self):
        index = OrderedIndex("t")
        index.insert(1, {"t": 5.0})
        index.insert(2, {"t": 5.0})
        index.remove(1, {"t": 5.0})
        assert list(index.range(5.0, 5.0)) == [2]


@pytest.fixture()
def events_db() -> Database:
    database = Database()
    database.create_table(
        TableSchema(
            "events",
            [
                Column("event_id", ColumnType.INTEGER, nullable=False),
                Column("kind", ColumnType.TEXT),
                Column("start_time", ColumnType.REAL),
                Column("rate", ColumnType.REAL),
            ],
            primary_key="event_id",
            indexes=[("start_time",)],
        )
    )
    kinds = ["flare", "flare", "grb", "quiet"]
    for index in range(40):
        database.execute(
            Insert(
                "events",
                {
                    "event_id": index,
                    "kind": kinds[index % 4],
                    "start_time": float(index * 10),
                    "rate": float((index * 37) % 100),
                },
            )
        )
    return database


class TestSelectExecution:
    def test_full_scan_where(self, events_db):
        rows = events_db.execute(Select("events", where=Comparison("kind", "=", "grb")))
        assert len(rows) == 10
        assert all(row["kind"] == "grb" for row in rows)

    def test_pk_probe_plan_and_result(self, events_db):
        select = Select("events", where=Comparison("event_id", "=", 7))
        assert events_db.explain(select) == "PK_PROBE on event_id"
        rows = events_db.execute(select)
        assert len(rows) == 1 and rows[0]["event_id"] == 7

    def test_range_scan_plan_and_result(self, events_db):
        select = Select("events", where=Between("start_time", 100.0, 150.0))
        assert events_db.explain(select) == "RANGE_SCAN on start_time"
        rows = events_db.execute(select)
        assert sorted(row["event_id"] for row in rows) == [10, 11, 12, 13, 14, 15]

    def test_order_by_asc_desc(self, events_db):
        asc = events_db.execute(Select("events", order_by=[("rate", "asc")], limit=3))
        desc = events_db.execute(Select("events", order_by=[("rate", "desc")], limit=3))
        assert asc[0]["rate"] <= asc[1]["rate"] <= asc[2]["rate"]
        assert desc[0]["rate"] >= desc[1]["rate"] >= desc[2]["rate"]

    def test_order_by_uses_ordered_index_when_available(self, events_db):
        select = Select("events", order_by=[("start_time", "desc")], limit=5)
        assert "RANGE_SCAN" in events_db.explain(select)
        rows = events_db.execute(select)
        assert [row["event_id"] for row in rows] == [39, 38, 37, 36, 35]

    def test_multi_key_order_by(self, events_db):
        rows = events_db.execute(
            Select("events", order_by=[("kind", "asc"), ("rate", "desc")])
        )
        for previous, current in zip(rows, rows[1:]):
            if previous["kind"] == current["kind"]:
                assert previous["rate"] >= current["rate"]
            else:
                assert previous["kind"] <= current["kind"]

    def test_limit_and_offset(self, events_db):
        rows = events_db.execute(
            Select("events", order_by=[("event_id", "asc")], limit=5, offset=10)
        )
        assert [row["event_id"] for row in rows] == [10, 11, 12, 13, 14]

    def test_projection(self, events_db):
        rows = events_db.execute(Select("events", columns=["event_id"], limit=1))
        assert list(rows[0].keys()) == ["event_id"]

    def test_unknown_projection_column_rejected(self, events_db):
        with pytest.raises(QueryError):
            events_db.execute(Select("events", columns=["nope"], limit=1))

    def test_aggregates_without_group(self, events_db):
        rows = events_db.execute(
            Select(
                "events",
                aggregates=[
                    Aggregate("count", "*", "n"),
                    Aggregate("min", "rate", "lo"),
                    Aggregate("max", "rate", "hi"),
                    Aggregate("avg", "start_time", "mid"),
                ],
            )
        )
        assert rows[0]["n"] == 40
        assert rows[0]["lo"] == 0.0
        assert rows[0]["mid"] == pytest.approx(195.0)

    def test_group_by(self, events_db):
        rows = events_db.execute(
            Select("events", group_by=["kind"], aggregates=[Aggregate("count", "*", "n")])
        )
        assert {row["kind"]: row["n"] for row in rows} == {
            "flare": 20, "grb": 10, "quiet": 10,
        }

    def test_aggregate_over_empty_set_is_null(self, events_db):
        rows = events_db.execute(
            Select(
                "events",
                where=Comparison("kind", "=", "nothing"),
                aggregates=[Aggregate("sum", "rate", "total")],
            )
        )
        assert rows[0]["total"] is None

    def test_group_by_requires_aggregate(self):
        with pytest.raises(QueryError):
            Select("events", group_by=["kind"])

    def test_unknown_table_rejected(self, events_db):
        with pytest.raises(SchemaError):
            events_db.execute(Select("nope"))


class TestJoin:
    def test_inner_equijoin(self):
        database = Database()
        database.create_table(
            TableSchema(
                "hle",
                [Column("hle_id", ColumnType.INTEGER, nullable=False),
                 Column("kind", ColumnType.TEXT)],
                primary_key="hle_id",
            )
        )
        database.create_table(
            TableSchema(
                "ana",
                [Column("ana_id", ColumnType.INTEGER, nullable=False),
                 Column("hle_id", ColumnType.INTEGER),
                 Column("algorithm", ColumnType.TEXT)],
                primary_key="ana_id",
            )
        )
        for hle_id, kind in ((1, "flare"), (2, "grb")):
            database.execute(Insert("hle", {"hle_id": hle_id, "kind": kind}))
        for ana_id, hle_id in ((10, 1), (11, 1), (12, 2)):
            database.execute(
                Insert("ana", {"ana_id": ana_id, "hle_id": hle_id, "algorithm": "img"})
            )
        rows = database.execute(
            Select("ana", join=Join("hle", "hle_id", "hle_id"))
        )
        assert len(rows) == 3
        flare_rows = [row for row in rows if row["kind"] == "flare"]
        assert {row["ana_id"] for row in flare_rows} == {10, 11}


def _random_predicate(rng: random.Random, depth: int = 0):
    """A random predicate tree covering every node type."""
    columns = ("a", "b", "c")
    scalars = (0, 1, 5, -3, 2.5, "x", "flare", "")
    kind = rng.randrange(9 if depth < 3 else 6)
    column = rng.choice(columns)
    if kind == 0:
        return Comparison(column, rng.choice(["=", "!=", "<", "<=", ">", ">="]),
                          rng.choice(scalars + (None,)))
    if kind == 1:
        low, high = rng.choice(scalars), rng.choice(scalars)
        return Between(column, low, high)
    if kind == 2:
        return In(column, [rng.choice(scalars) for _ in range(rng.randrange(1, 4))])
    if kind == 3:
        return Like(column, rng.choice(["fla%", "f_are", "%", "x", "", "%a%"]))
    if kind == 4:
        return IsNull(column, negated=rng.random() < 0.5)
    if kind == 5:
        from repro.metadb.predicate import ALWAYS
        return ALWAYS
    if kind == 6:
        return Not(_random_predicate(rng, depth + 1))
    operands = [_random_predicate(rng, depth + 1) for _ in range(rng.randrange(1, 4))]
    return And(operands) if kind == 7 else Or(operands)


def _random_row(rng: random.Random) -> dict:
    values = (0, 1, 5, -3, 2.5, "x", "flare", "", "abc\n", None)
    return {column: rng.choice(values) for column in ("a", "b", "c")}


class TestPredicateCompilation:
    def test_differential_compile_vs_matches(self):
        """compile()(row) must agree with matches(row) for every node type."""
        rng = random.Random(1234)
        for _trial in range(300):
            predicate = _random_predicate(rng)
            compiled = predicate.compile()
            for _row in range(20):
                row = _random_row(rng)
                assert compiled(row) == predicate.matches(row), (predicate, row)

    def test_fused_and_or_closures(self):
        predicate = And([Comparison("a", ">", 1), Comparison("a", "<", 5),
                         Or([Comparison("b", "=", 0), IsNull("c")])])
        compiled = predicate.compile()
        assert compiled({"a": 3, "b": 0, "c": 1})
        assert compiled({"a": 3, "b": 9, "c": None})
        assert not compiled({"a": 3, "b": 9, "c": 1})
        assert not compiled({"a": 9, "b": 0, "c": None})


@pytest.fixture()
def nullable_db() -> Database:
    database = Database()
    database.create_table(
        TableSchema(
            "m",
            [
                Column("id", ColumnType.INTEGER, nullable=False),
                Column("score", ColumnType.REAL),
            ],
            primary_key="id",
        )
    )
    for row_id, score in ((1, 5.0), (2, None), (3, -1.0), (4, None), (5, 0.0)):
        database.execute(Insert("m", {"id": row_id, "score": score}))
    return database


class TestNullOrdering:
    def test_nulls_last_ascending(self, nullable_db):
        rows = nullable_db.execute(Select("m", order_by=[("score", "asc")]))
        assert [row["id"] for row in rows] == [3, 5, 1, 2, 4]

    def test_nulls_last_descending(self, nullable_db):
        # NULL must not be treated as 0: it sorts after every real value
        # in both directions, and never interleaves with negatives.
        rows = nullable_db.execute(Select("m", order_by=[("score", "desc")]))
        assert [row["id"] for row in rows] == [1, 5, 3, 2, 4]

    def test_nulls_last_with_limit_topn(self, nullable_db):
        rows = nullable_db.execute(Select("m", order_by=[("score", "desc")], limit=3))
        assert [row["id"] for row in rows] == [1, 5, 3]


class TestPlannerAndExplain:
    def test_explain_plan_pk_probe(self, events_db):
        plan = events_db.explain_plan(Select("events", where=Comparison("event_id", "=", 7)))
        assert plan["access"] == "pk_probe"
        assert plan["index_column"] == "event_id"
        assert plan["estimated_rows"] == 1
        assert plan["table_rows"] == 40

    def test_explain_plan_in_multi_probe(self, events_db):
        select = Select("events", where=In("event_id", [3, 5, 8]))
        plan = events_db.explain_plan(select)
        assert plan["access"] == "in_probe"
        assert plan["in_keys"] == 3
        rows = events_db.execute(select)
        assert sorted(row["event_id"] for row in rows) == [3, 5, 8]

    def test_explain_plan_topn(self, events_db):
        plan = events_db.explain_plan(
            Select("events", order_by=[("rate", "desc")], limit=5)
        )
        assert plan["topn"] is True
        assert plan["limit_pushdown"] is False

    def test_explain_plan_limit_pushdown(self, events_db):
        plan = events_db.explain_plan(
            Select("events", order_by=[("start_time", "desc")], limit=5)
        )
        assert plan["access"] == "range_scan"
        assert plan["ordered"] is True
        assert plan["limit_pushdown"] is True
        assert plan["topn"] is False

    def test_planner_prefers_selective_conjunct(self, events_db):
        # kind has no index; start_time's range narrows to 3 rows while a
        # hypothetical full scan would touch 40 — the range must win.
        select = Select(
            "events",
            where=And([
                Comparison("kind", "=", "flare"),
                Between("start_time", 0.0, 20.0),
            ]),
        )
        plan = events_db.explain_plan(select)
        assert plan["access"] == "range_scan"
        assert plan["index_column"] == "start_time"
        assert plan["estimated_rows"] == 3

    def test_planner_prefers_probe_over_wide_range(self, events_db):
        # Equality on the pk (1 row) must beat a range covering all rows.
        select = Select(
            "events",
            where=And([
                Comparison("event_id", "=", 7),
                Between("start_time", 0.0, 1e9),
            ]),
        )
        plan = events_db.explain_plan(select)
        assert plan["access"] == "pk_probe"

    def test_explain_statement_execution(self, events_db):
        rows = events_db.execute("EXPLAIN SELECT * FROM events WHERE event_id = 7")
        assert rows[0]["access"] == "pk_probe"
        assert rows[0]["table"] == "events"

    def test_access_path_counters_mirrored(self, events_db):
        events_db.execute(Select("events", where=Comparison("event_id", "=", 7)))
        counter = events_db.obs.counter(
            "metadb.access_path", db=events_db.name, access="pk_probe"
        )
        assert counter.value >= 1

    def test_descending_bounded_range_streams_in_order(self, events_db):
        rows = events_db.execute(
            Select(
                "events",
                where=Between("start_time", 100.0, 200.0),
                order_by=[("start_time", "desc")],
                limit=4,
            )
        )
        assert [row["start_time"] for row in rows] == [200.0, 190.0, 180.0, 170.0]

    def test_topn_matches_full_sort(self, events_db):
        full = events_db.execute(Select("events", order_by=[("rate", "asc"), ("event_id", "desc")]))
        bounded = events_db.execute(
            Select("events", order_by=[("rate", "asc"), ("event_id", "desc")], limit=7, offset=3)
        )
        assert bounded == full[3:10]


class TestUpdateDelete:
    def test_update_returns_affected_count(self, events_db):
        affected = events_db.execute(
            Update("events", {"kind": "renamed"}, Comparison("kind", "=", "quiet"))
        )
        assert affected == 10
        assert len(events_db.execute(Select("events", where=Comparison("kind", "=", "renamed")))) == 10

    def test_update_maintains_indexes(self, events_db):
        events_db.execute(
            Update("events", {"start_time": 9999.0}, Comparison("event_id", "=", 0))
        )
        rows = events_db.execute(Select("events", where=Between("start_time", 9000.0, 10000.0)))
        assert [row["event_id"] for row in rows] == [0]

    def test_delete_with_predicate(self, events_db):
        from repro.metadb import Delete

        deleted = events_db.execute(Delete("events", Comparison("kind", "=", "grb")))
        assert deleted == 10
        assert len(events_db.execute(Select("events"))) == 30
