"""Tests for user-submitted analysis routines (§3.3)."""

import pytest

from repro.core import Hedc
from repro.pl import Phase, RoutineRejected
from repro.security import AuthError, ConstraintViolation

GOOD_SOURCE = """
function spectral_index, energies
  ; crude spectral slope proxy: log-count ratio of two bands
  lo = n_elements(where(energies lt 10.0))
  hi = n_elements(where(energies ge 10.0))
  if hi eq 0 then return, 0.0
  return, alog(float(lo) + 1.0) - alog(float(hi) + 1.0)
end
"""


@pytest.fixture(scope="module")
def hedc(tmp_path_factory):
    instance = Hedc.create(tmp_path_factory.mktemp("routines"))
    instance.ingest_observation(duration_s=240.0, seed=17, unit_target_photons=10**6)
    instance.register_user("author", "pw")
    instance.register_user("other", "pw")
    return instance


class TestValidation:
    def test_good_routine_accepted(self, hedc):
        author = hedc.dm.users.find("author")
        routine = hedc.routines.submit(author, "spectral_index", GOOD_SOURCE,
                                       description="slope proxy")
        assert routine.name == "spectral_index"
        assert not routine.public

    def test_syntax_error_rejected(self, hedc):
        author = hedc.dm.users.find("author")
        with pytest.raises(RoutineRejected, match="parse"):
            hedc.routines.submit(author, "broken", "function broken, x\n  oops(")

    def test_non_definition_code_rejected(self, hedc):
        author = hedc.dm.users.find("author")
        source = "function sneaky, x\n  return, x\nend\nprint, 'side effect'"
        with pytest.raises(RoutineRejected, match="definitions"):
            hedc.routines.submit(author, "sneaky", source)

    def test_wrong_name_rejected(self, hedc):
        author = hedc.dm.users.find("author")
        with pytest.raises(RoutineRejected, match="exactly one function"):
            hedc.routines.submit(author, "expected",
                                 "function different, x\n  return, x\nend")

    def test_non_terminating_routine_rejected(self, hedc):
        author = hedc.dm.users.find("author")
        source = (
            "function forever, x\n"
            "  i = 0\n"
            "  while 1 do i = i + 1\n"
            "  return, i\n"
            "end"
        )
        with pytest.raises(RoutineRejected, match="terminate"):
            hedc.routines.submit(author, "forever", source)

    def test_crashing_routine_rejected(self, hedc):
        author = hedc.dm.users.find("author")
        source = "function divzero, x\n  return, 1 / 0\nend"
        with pytest.raises(RoutineRejected, match="smoke"):
            hedc.routines.submit(author, "divzero", source)

    def test_guest_cannot_submit(self, hedc):
        guest = hedc.dm.users.create_user("guest-r", "pw", group="guest")
        with pytest.raises(AuthError):
            hedc.routines.submit(guest, "nope",
                                 "function nope, x\n  return, x\nend")

    def test_duplicate_name_rejected(self, hedc):
        author = hedc.dm.users.find("author")
        with pytest.raises(RoutineRejected, match="already exists"):
            hedc.routines.submit(author, "spectral_index", GOOD_SOURCE)


class TestPublishAndUse:
    def test_only_owner_publishes(self, hedc):
        other = hedc.dm.users.find("other")
        with pytest.raises(ConstraintViolation):
            hedc.routines.publish(other, "spectral_index")

    def test_publish_and_round_trip(self, hedc):
        author = hedc.dm.users.find("author")
        hedc.routines.publish(author, "spectral_index")
        stored = hedc.routines.get("spectral_index")
        assert stored.public
        assert "spectral_index" in stored.source
        assert [routine.name for routine in hedc.routines.published()] == [
            "spectral_index"
        ]

    def test_published_routine_loads_on_server_restart(self, hedc):
        hedc.idl.stop_all()
        hedc.idl.start_all()
        result = hedc.idl.invoke("spectral_index(findgen(20) + 3.0)")
        assert result.ok

    def test_other_user_runs_routine_through_pl(self, hedc):
        """The §3.3 promise: routines become available to other users."""
        other = hedc.dm.users.find("other")
        event = hedc.events()[0]
        request = hedc.analyze(other, event["hle_id"], "user_routine",
                               {"routine": "spectral_index"})
        assert request.phase is Phase.COMMITTED, request.error
        stored = hedc.dm.semantic.get_analysis(other, request.ana_id)
        assert stored["algorithm"] == "user_routine"
        assert "spectral_index" in stored["notes"]

    def test_hot_load_without_restart(self, hedc):
        """submit_routine(publish=True) pushes into running servers."""
        author = hedc.dm.users.find("author")
        source = "function double_rate, x\n  return, x * 2\nend"
        hedc.submit_routine(author, "double_rate", source, publish=True)
        result = hedc.idl.invoke("total(double_rate([1.0, 2.0]))")
        assert result.ok and result.value == 6.0

    def test_missing_routine_parameter_fails_request(self, hedc):
        other = hedc.dm.users.find("other")
        event = hedc.events()[0]
        request = hedc.analyze(other, event["hle_id"], "user_routine", {})
        assert request.phase is Phase.FAILED
