"""Tests for repro.obs: metrics, tracing, exporters, instrumentation."""

import contextvars
import json
import threading

import pytest

from repro.obs import (
    InMemoryExporter,
    JsonExporter,
    LineProtocolExporter,
    MetricsRegistry,
    NO_DATA,
    NULL_SPAN,
    NoData,
    Observability,
    Tracer,
    instrument,
    to_json_snapshot,
    to_line_protocol,
)


class TestCountersAndGauges:
    def test_counter_accumulates_and_rejects_negative(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_labels_make_distinct_series(self):
        registry = MetricsRegistry()
        registry.counter("req", route="/a").inc()
        registry.counter("req", route="/b").inc(2)
        assert registry.value("req", route="/a") == 1
        assert registry.value("req", route="/b") == 2
        assert registry.family_total("req") == 3
        # Same identity returns the same object.
        assert registry.counter("req", route="/a") is registry.counter("req", route="/a")

    def test_gauge_moves_both_ways(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth")
        gauge.set(10)
        gauge.dec(3)
        gauge.inc()
        assert gauge.value == 8

    def test_kind_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")

    def test_reset_preserves_handles(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        counter.inc(7)
        registry.reset()
        assert counter.value == 0
        counter.inc()
        assert registry.value("c") == 1


class TestHistogram:
    def test_quantiles_on_uniform_distribution(self):
        registry = MetricsRegistry()
        bounds = [i / 100 for i in range(1, 101)]  # 0.01 .. 1.00
        histogram = registry.histogram("lat", bounds=bounds)
        for k in range(1, 1001):
            histogram.observe(k / 1000)
        assert histogram.count == 1000
        assert histogram.quantile(0.50) == pytest.approx(0.50, abs=0.02)
        assert histogram.quantile(0.95) == pytest.approx(0.95, abs=0.02)
        assert histogram.quantile(0.99) == pytest.approx(0.99, abs=0.02)
        assert histogram.min == pytest.approx(0.001)
        assert histogram.max == pytest.approx(1.0)

    def test_quantiles_on_bimodal_distribution(self):
        registry = MetricsRegistry()
        bounds = [0.001, 0.01, 0.1, 1.0, 10.0]
        histogram = registry.histogram("lat", bounds=bounds)
        for _ in range(90):
            histogram.observe(0.005)  # fast mode
        for _ in range(10):
            histogram.observe(5.0)  # slow tail
        assert histogram.quantile(0.5) < 0.01
        assert histogram.quantile(0.95) > 1.0

    def test_overflow_bucket_and_extremes(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat", bounds=[1.0])
        histogram.observe(100.0)
        assert histogram.quantile(1.0) == pytest.approx(100.0)
        assert histogram.quantile(0.0) == pytest.approx(100.0)

    def test_empty_histogram_quantile_is_no_data(self):
        # Regression (PR-10): an empty histogram used to answer 0.0 —
        # indistinguishable from a genuinely instant operation.
        histogram = MetricsRegistry().histogram("lat")
        value = histogram.quantile(0.5)
        assert value is NO_DATA
        assert isinstance(value, NoData)
        assert not value            # falsy: `if p95:` skips it
        assert value != value       # NaN semantics propagate
        with pytest.raises(ValueError):
            histogram.quantile(1.5)

    def test_reset_histogram_quantile_is_no_data(self):
        histogram = MetricsRegistry().histogram("lat")
        histogram.observe(0.25)
        assert histogram.quantile(0.5) is not NO_DATA
        histogram.reset()
        assert histogram.quantile(0.95) is NO_DATA

    def test_empty_histogram_snapshot_and_exports_are_clean(self):
        # The sentinel must never leak NaN into JSON or line protocol.
        registry = MetricsRegistry()
        registry.histogram("lat", route="/x")
        snapshot = registry.get("lat", route="/x").snapshot()
        assert snapshot["p50"] is None and snapshot["p95"] is None
        assert snapshot["mean"] is None
        text = to_line_protocol(registry)
        assert "nan" not in text.lower()
        assert "count=0i" in text
        json.loads(json.dumps(to_json_snapshot(registry)))  # strict-parsable

    def test_snapshot_fields(self):
        histogram = MetricsRegistry().histogram("lat", route="/x")
        histogram.observe(0.5)
        snap = histogram.snapshot()
        assert snap["count"] == 1
        assert snap["labels"] == {"route": "/x"}
        assert snap["mean"] == pytest.approx(0.5)
        assert set(snap) >= {"p50", "p95", "p99", "min", "max"}


class TestRegistryThreadSafety:
    def test_concurrent_writers_lose_no_updates(self):
        registry = MetricsRegistry()
        n_threads, n_updates = 8, 2000

        def work():
            for _ in range(n_updates):
                registry.counter("shared").inc()
                registry.histogram("h", bounds=[0.5]).observe(0.25)

        threads = [threading.Thread(target=work) for _ in range(n_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert registry.value("shared") == n_threads * n_updates
        assert registry.get("h").count == n_threads * n_updates

    def test_concurrent_get_or_create_yields_one_identity(self):
        registry = MetricsRegistry()
        seen = []
        barrier = threading.Barrier(8)

        def work():
            barrier.wait()
            seen.append(registry.counter("raced", node="n1"))

        threads = [threading.Thread(target=work) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len({id(metric) for metric in seen}) == 1


class TestTracer:
    def test_span_nesting_within_a_thread(self):
        tracer = Tracer()
        with tracer.span("web.handle"):
            with tracer.span("dm.query"):
                with tracer.span("metadb.execute"):
                    pass
            with tracer.span("dm.query"):
                pass
        roots = tracer.finished_spans()
        assert len(roots) == 1
        assert roots[0].tree_names() == [
            "web.handle", "dm.query", "metadb.execute", "dm.query",
        ]
        assert all(span.trace_id == roots[0].span_id for span in roots[0].walk())

    def test_cross_thread_propagation_via_copied_context(self):
        tracer = Tracer()
        with tracer.span("parent"):
            ctx = contextvars.copy_context()

            def work():
                with tracer.span("child"):
                    pass

            thread = threading.Thread(target=lambda: ctx.run(work))
            thread.start()
            thread.join()
        root = tracer.finished_spans()[0]
        assert root.tree_names() == ["parent", "child"]
        assert root.children[0].thread_name != root.thread_name

    def test_exception_marks_span_as_error(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        span = tracer.finished_spans()[0]
        assert span.status == "error"
        assert "boom" in span.error
        assert span.duration_s is not None

    def test_bounded_retention(self):
        tracer = Tracer(max_finished=4)
        for index in range(10):
            with tracer.span(f"s{index}"):
                pass
        names = [span.name for span in tracer.finished_spans()]
        assert names == ["s6", "s7", "s8", "s9"]


class TestObservabilityHub:
    def test_tracing_disabled_by_default(self):
        obs = Observability()
        with obs.span("invisible") as span:
            assert span is NULL_SPAN
            span.set_tag("ignored", 1)  # absorbed, no error
        assert obs.tracer.finished_spans() == []
        assert obs.current_span() is None

    def test_metrics_collect_even_when_tracing_is_off(self):
        obs = Observability()
        with obs.timed("op_s") as timer:
            pass
        assert timer.elapsed_s >= 0.0
        assert obs.registry.get("op_s").count == 1

    def test_timed_opens_span_when_enabled(self):
        obs = Observability(enabled=True)
        with obs.timed("op_s", kind="test") as timer:
            assert timer.span is not None
        root = obs.tracer.finished_spans()[0]
        assert root.name == "op_s"
        assert obs.registry.get("op_s", kind="test").count == 1

    def test_instrument_decorator_uses_instance_hub(self):
        class Component:
            def __init__(self):
                self.obs = Observability(enabled=True)

            @instrument("component.work_s")
            def work(self, x):
                return x * 2

        component = Component()
        assert component.work(21) == 42
        assert component.obs.registry.get("component.work_s").count == 1
        assert component.obs.tracer.finished_spans()[0].name == "component.work_s"


class TestExporters:
    def _populated(self):
        obs = Observability(enabled=True)
        obs.count("reqs", 3, route="/hle")
        obs.observe("lat_s", 0.25, route="/hle")
        with obs.span("root"):
            with obs.span("leaf"):
                pass
        return obs

    def test_line_protocol_round_trip(self):
        obs = self._populated()
        text = to_line_protocol(obs.registry)
        lines = dict(
            line.split(" ", 1) for line in text.strip().splitlines()
        )
        assert lines["reqs,route=/hle"] == "value=3i"
        assert "count=1i" in lines["lat_s,route=/hle"]
        assert "p95=" in lines["lat_s,route=/hle"]

    def test_json_snapshot_includes_traces(self):
        obs = self._populated()
        snapshot = to_json_snapshot(obs.registry, tracer=obs.tracer)
        assert snapshot["metrics"]["reqs"][0]["value"] == 3
        assert snapshot["traces"][0]["name"] == "root"
        assert snapshot["traces"][0]["children"][0]["name"] == "leaf"
        json.dumps(snapshot)  # fully serialisable

    def test_in_memory_exporter_accumulates(self):
        obs = self._populated()
        exporter = InMemoryExporter()
        exporter.export(obs.registry, obs.tracer)
        obs.count("reqs", route="/hle")
        exporter.export(obs.registry, obs.tracer)
        assert len(exporter.snapshots) == 2
        assert exporter.latest["metrics"]["reqs"][0]["value"] == 4

    def test_json_exporter_emits_parseable_text(self):
        obs = self._populated()
        parsed = json.loads(JsonExporter().export(obs.registry, obs.tracer))
        assert parsed["metrics"]["lat_s"][0]["count"] == 1

    def test_line_protocol_exporter_appends_to_file(self, tmp_path):
        obs = self._populated()
        target = tmp_path / "metrics.lp"
        exporter = LineProtocolExporter(str(target))
        exporter.export(obs.registry)
        exporter.export(obs.registry)
        content = target.read_text()
        assert content.count("reqs,route=/hle") == 2
