"""Tests for the PL derived-product cache: fingerprinting, repeat-run
serving with zero IDL work, epoch invalidation on write-path workflows,
cross-user visibility, singleflight collapse and stale-while-degraded."""

import pytest

from repro.pl import (
    AnalysisRequest,
    Frontend,
    GlobalDirectory,
    IdlServerManager,
    Phase,
    fingerprint,
)
from repro.pl.product_cache import VOLATILE_PARAMETERS
from repro.resil import BreakerState
from repro.rhessi import TelemetryGenerator, package_units, standard_day_plan


@pytest.fixture()
def stack(dm, tmp_path):
    plan = standard_day_plan(duration=240.0, seed=17, n_flares=1, n_bursts=0, n_saa=0)
    photons = TelemetryGenerator(plan, seed=17).generate()
    units = package_units(photons, tmp_path / "in", unit_target_photons=10**6)
    for unit in units:
        dm.process.load_raw_unit(unit, "main")
    alice = dm.users.create_user("alice", "pw", group="scientist")
    directory = GlobalDirectory()
    manager = IdlServerManager("server", n_servers=2, directory=directory)
    manager.start_all()
    frontend = Frontend(dm, manager, directory=directory)
    hle = dm.semantic.find_hles(alice)[0]
    return dm, frontend, manager, directory, alice, hle


class TestFingerprint:
    def test_stable_across_dict_order(self):
        a = fingerprint("histogram", 7, {"n_bins": 64, "attribute": "energy"})
        b = fingerprint("histogram", 7, {"attribute": "energy", "n_bins": 64})
        assert a == b

    def test_volatile_parameters_excluded(self):
        base = fingerprint("histogram", 7, {"n_bins": 64})
        for volatile in VOLATILE_PARAMETERS:
            assert fingerprint("histogram", 7, {"n_bins": 64, volatile: True}) == base

    def test_identity_parameters_distinguish(self):
        base = fingerprint("histogram", 7, {"n_bins": 64})
        assert fingerprint("histogram", 7, {"n_bins": 32}) != base
        assert fingerprint("histogram", 8, {"n_bins": 64}) != base
        assert fingerprint("imaging", 7, {"n_bins": 64}) != base


class TestRepeatRunServing:
    def test_repeat_identical_run_uses_zero_idl_invocations(self, stack):
        """The acceptance criterion: the repeat run never touches IDL."""
        _dm, frontend, manager, _dir, alice, hle = stack
        obs = frontend.obs
        hits_before = obs.registry.value("pl.product_cache.hits",
                                         algorithm="histogram")
        first = frontend.run(
            AnalysisRequest(alice, hle["hle_id"], "histogram", {"n_bins": 32}))
        assert first.phase is Phase.COMMITTED, first.error
        invocations = manager.stats()["invocations"]
        second = frontend.run(
            AnalysisRequest(alice, hle["hle_id"], "histogram", {"n_bins": 32}))
        assert second.phase is Phase.COMMITTED
        assert manager.stats()["invocations"] == invocations
        assert second.ana_id == first.ana_id
        assert second.parameters.get("served_from_cache") is True
        assert obs.registry.value("pl.product_cache.hits",
                                  algorithm="histogram") == hits_before + 1
        assert frontend.product_cache.stats.hits >= 1

    def test_force_bypasses_cache(self, stack):
        _dm, frontend, manager, _dir, alice, hle = stack
        first = frontend.run(
            AnalysisRequest(alice, hle["hle_id"], "histogram", {"n_bins": 32}))
        invocations = manager.stats()["invocations"]
        forced = frontend.run(
            AnalysisRequest(alice, hle["hle_id"], "histogram",
                            {"n_bins": 32, "force": True}))
        assert forced.phase is Phase.COMMITTED
        assert manager.stats()["invocations"] > invocations
        assert forced.ana_id != first.ana_id
        assert "served_from_cache" not in forced.parameters

    def test_uncached_frontend_always_runs(self, stack):
        dm, _frontend, manager, directory, alice, hle = stack
        frontend = Frontend(dm, manager, directory=directory,
                            cache_products=False)
        assert frontend.product_cache is None
        first = frontend.run(
            AnalysisRequest(alice, hle["hle_id"], "histogram", {"n_bins": 32}))
        invocations = manager.stats()["invocations"]
        second = frontend.run(
            AnalysisRequest(alice, hle["hle_id"], "histogram", {"n_bins": 32}))
        assert second.ana_id != first.ana_id
        assert manager.stats()["invocations"] > invocations


class TestEpochInvalidation:
    def test_recalibration_invalidates_cached_products(self, stack):
        dm, frontend, _mgr, _dir, alice, hle = stack
        first = frontend.run(
            AnalysisRequest(alice, hle["hle_id"], "histogram", {"n_bins": 32}))
        assert first.phase is Phase.COMMITTED, first.error
        from repro.metadb import Select

        unit_id = dm.io.execute(Select("raw_units"))[0]["unit_id"]
        dm.process.publish_calibration((1.05,) * 9, (0.2,) * 9, note="v2")
        dm.process.recalibrate_unit(unit_id, "main")
        assert dm.process.cache_epoch >= 2
        repeat = frontend.run(
            AnalysisRequest(alice, hle["hle_id"], "histogram", {"n_bins": 32}))
        assert repeat.phase is Phase.COMMITTED, repeat.error
        assert repeat.ana_id != first.ana_id
        assert "served_from_cache" not in repeat.parameters

    def test_relocation_invalidates_cached_products(self, stack, tmp_path):
        dm, frontend, _mgr, _dir, alice, hle = stack
        from repro.filestore import DiskArchive

        first = frontend.run(
            AnalysisRequest(alice, hle["hle_id"], "histogram", {"n_bins": 32}))
        assert first.phase is Phase.COMMITTED, first.error
        cold = DiskArchive("cold", tmp_path / "cold")
        dm.io.storage.register(cold)
        dm.io.names.register_archive("cold", str(cold.root))
        moved = dm.process.relocate_archive("main", "cold")
        assert moved > 0
        assert dm.process.cache_epoch == 1
        repeat = frontend.run(
            AnalysisRequest(alice, hle["hle_id"], "histogram", {"n_bins": 32}))
        assert repeat.phase is Phase.COMMITTED, repeat.error
        assert repeat.ana_id != first.ana_id


class TestVisibility:
    def test_private_product_not_served_to_other_users(self, stack):
        """Analyses are owner-scoped until published; a cached private
        product must not leak across users."""
        dm, frontend, _mgr, _dir, alice, hle = stack
        bob = dm.users.create_user("bob", "pw", group="scientist")
        first = frontend.run(
            AnalysisRequest(alice, hle["hle_id"], "histogram", {"n_bins": 32}))
        assert first.phase is Phase.COMMITTED, first.error
        bobs = frontend.run(
            AnalysisRequest(bob, hle["hle_id"], "histogram", {"n_bins": 32}))
        assert bobs.phase is Phase.COMMITTED, bobs.error
        assert bobs.ana_id != first.ana_id
        assert "served_from_cache" not in bobs.parameters

    def test_published_product_served_across_users(self, stack):
        dm, frontend, manager, _dir, alice, hle = stack
        first = frontend.run(
            AnalysisRequest(alice, hle["hle_id"], "lightcurve", {}))
        assert first.phase is Phase.COMMITTED, first.error
        dm.semantic.publish_analysis(alice, first.ana_id)
        bob = dm.users.create_user("bob", "pw", group="scientist")
        invocations = manager.stats()["invocations"]
        bobs = frontend.run(
            AnalysisRequest(bob, hle["hle_id"], "lightcurve", {}))
        assert bobs.ana_id == first.ana_id
        assert bobs.parameters.get("served_from_cache") is True
        assert manager.stats()["invocations"] == invocations


class TestSingleflightCollapse:
    def test_n_identical_submits_execute_once(self, stack):
        dm, _frontend, manager, directory, alice, hle = stack
        frontend = Frontend(dm, manager, directory=directory, n_workers=4)
        invocations = manager.stats()["invocations"]
        requests = [
            AnalysisRequest(alice, hle["hle_id"], "histogram", {"n_bins": 48})
            for _submit in range(8)
        ]
        for request in requests:
            frontend.submit(request)
        frontend.drain()
        frontend.close()
        assert all(r.phase is Phase.COMMITTED for r in requests), \
            [r.error for r in requests]
        # One execution total: leader ran the pipeline, everyone else was
        # coalesced onto its flight or served from the stored entry.
        assert manager.stats()["invocations"] == invocations + 1
        assert len({r.ana_id for r in requests}) == 1


class TestStaleWhileDegraded:
    def test_stale_entry_served_when_breaker_open(self, stack):
        dm, frontend, manager, _dir, alice, hle = stack
        first = frontend.run(
            AnalysisRequest(alice, hle["hle_id"], "histogram", {"n_bins": 32}))
        assert first.phase is Phase.COMMITTED, first.error
        # The entry goes stale (a recalibration elsewhere) ...
        dm.process.bump_cache_epoch("test")
        # ... and the IDL pool breaker is open.
        for _failure in range(manager.breaker.min_calls):
            manager.breaker.record_failure()
        assert manager.breaker.state is BreakerState.OPEN
        invocations = manager.stats()["invocations"]
        degraded = frontend.run(
            AnalysisRequest(alice, hle["hle_id"], "histogram", {"n_bins": 32}))
        assert degraded.phase is Phase.COMMITTED
        assert degraded.ana_id == first.ana_id
        assert degraded.parameters.get("served_from_cache") is True
        assert degraded.parameters.get("degraded") is True
        assert manager.stats()["invocations"] == invocations
        manager.breaker.reset()

    def test_no_stale_entry_means_the_failure_surfaces(self, stack):
        _dm, frontend, manager, _dir, alice, hle = stack
        for _failure in range(manager.breaker.min_calls):
            manager.breaker.record_failure()
        assert manager.breaker.state is BreakerState.OPEN
        request = frontend.run(
            AnalysisRequest(alice, hle["hle_id"], "histogram", {"n_bins": 99}))
        assert request.phase is Phase.FAILED
        manager.breaker.reset()


class TestCheckExisting:
    def test_finds_equivalent_prior_analysis(self, stack):
        _dm, frontend, _mgr, _dir, alice, hle = stack
        context = frontend.context
        assert context.check_existing(alice, hle["hle_id"], "histogram") is None
        first = frontend.run(
            AnalysisRequest(alice, hle["hle_id"], "histogram", {"n_bins": 32}))
        existing = context.check_existing(alice, hle["hle_id"], "histogram")
        assert existing is not None and existing["ana_id"] == first.ana_id
        assert context.check_existing(alice, hle["hle_id"], "imaging") is None

    def test_counts_as_a_query(self, stack):
        _dm, frontend, _mgr, _dir, alice, hle = stack
        context = frontend.context
        before = context.queries
        context.check_existing(alice, hle["hle_id"], "histogram")
        assert context.queries == before + 1


class TestTelemetryReport:
    def test_report_includes_unified_cache_section(self, stack):
        dm, frontend, _mgr, _dir, alice, hle = stack
        frontend.run(
            AnalysisRequest(alice, hle["hle_id"], "histogram", {"n_bins": 32}))
        frontend.run(
            AnalysisRequest(alice, hle["hle_id"], "histogram", {"n_bins": 32}))
        report = dm.telemetry_report()
        assert "dm.sessions" in report["caches"]
        products = report["caches"]["pl.products"]
        assert products["hits"] >= 1
        assert products["entries"] == 1
        assert products["size_bytes"] > 0
