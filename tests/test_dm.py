"""Tests for the DM component: name mapping, I/O layer, semantic layer,
process layer, sessions and call redirection."""

import pytest

from repro.analysis import AnalysisProduct, render_pgm
from repro.dm import DataManager, DmRouter, NameMappingError, SessionCache, WorkflowError
from repro.dm.semantic import EntityNotFound
from repro.filestore import DiskArchive
from repro.metadb import Comparison, Insert, Select
from repro.rhessi import TelemetryGenerator, package_units, standard_day_plan
from repro.security import AuthError, ConstraintViolation

import numpy as np


@pytest.fixture()
def loaded_dm(dm, tmp_path):
    """A DM with one loaded raw unit and a scientist account."""
    plan = standard_day_plan(duration=240.0, seed=17, n_flares=1, n_bursts=0, n_saa=0)
    photons = TelemetryGenerator(plan, seed=17).generate()
    units = package_units(photons, tmp_path / "incoming", unit_target_photons=10**6)
    catalog_id = dm.semantic.create_catalog(dm.import_user, "standard", public=True)
    for unit in units:
        dm.process.load_raw_unit(unit, "main", standard_catalog_id=catalog_id)
    dm.users.create_user("alice", "pw", group="scientist")
    return dm, units, catalog_id


def _product() -> AnalysisProduct:
    product = AnalysisProduct("imaging", {"n_pixels": 8})
    product.add_image(render_pgm(np.eye(8)))
    product.log("unit test product")
    return product


class TestNameMapping:
    def test_register_and_resolve_file(self, dm):
        dm.io.names.register_file("item:1", "main", "raw/file.fits", size_bytes=10)
        names = dm.io.names.resolve_files("item:1")
        assert len(names) == 1
        assert names[0].name_type == "filename"
        assert names[0].path == "raw/file.fits"
        assert names[0].full.endswith("archive/raw/file.fits")

    def test_resolution_costs_two_indexed_queries(self, dm):
        """The paper's §4.3 claim: two extra queries on indexed fields."""
        dm.io.names.register_file("item:1", "main", "raw/file.fits")
        before = dm.io.default_database.stats.selects
        dm.io.names.resolve_files("item:1")
        assert dm.io.default_database.stats.selects - before == 2

    def test_relocate_archive_changes_constructed_names(self, dm):
        dm.io.names.register_file("item:1", "main", "raw/file.fits")
        affected = dm.io.names.relocate_archive("main", "/new/mount")
        assert affected == 1
        names = dm.io.names.resolve_files("item:1")
        assert names[0].full == "/new/mount/raw/file.fits"

    def test_relocate_unknown_archive_rejected(self, dm):
        with pytest.raises(NameMappingError):
            dm.io.names.relocate_archive("ghost", "/x")

    def test_tuple_and_url_names(self, dm):
        dm.io.names.register_tuple("tuple:hle:1", "item:1", "hle")
        dm.io.names.register_url("item:1", "https://hedc.example/d/1", transform="gunzip")
        tuples = dm.io.names.resolve_tuple("item:1")
        urls = dm.io.names.resolve_urls("item:1")
        assert tuples[0].path == "hle"
        assert urls[0].root.startswith("https://")

    def test_role_filtered_resolution(self, dm):
        dm.io.names.register_file("item:1", "main", "a.pgm", role="image")
        dm.io.names.register_file("item:1", "main", "a.log", role="log")
        assert len(dm.io.names.resolve_files("item:1", role="image")) == 1

    def test_move_file_rehomes_reference(self, dm, tmp_path):
        other = DiskArchive("other", tmp_path / "other")
        dm.io.storage.register(other)
        dm.io.names.register_archive("other", str(other.root))
        dm.io.names.register_file("item:1", "main", "raw/f.bin")
        dm.io.names.move_file("item:1", "raw/f.bin", "other")
        assert dm.io.names.resolve_files("item:1")[0].root == str(other.root)


class TestIoLayer:
    def test_sql_strings_rejected_at_dm_api(self, dm):
        """§5.4: the DM API has no provisions for regular SQL calls."""
        with pytest.raises(TypeError):
            dm.io.execute("SELECT * FROM hle")

    def test_collection_objects_translate_through_sql(self, dm):
        dm.io.execute(Insert("admin_config", {
            "config_id": 1, "section": "general", "key": "k", "value": "v",
        }))
        rows = dm.io.execute(Select("admin_config", where=Comparison("key", "=", "k")))
        assert rows[0]["value"] == "v"

    def test_partition_routing(self, dm):
        """§5.2: requests for parts of the schema route to another DBMS."""
        from repro.metadb import Database
        from repro.schema import install_generic

        other = Database(name="browse-db")
        install_generic(other)
        dm.io.attach_database("browse", other)
        dm.io.route_table("ops_log", "browse")
        dm.io.log("test", "routed message")
        assert len(other.execute(Select("ops_log"))) == 1
        assert len(dm.io.default_database.execute(Select("ops_log"))) == 0

    def test_unknown_route_target_rejected(self, dm):
        with pytest.raises(ValueError):
            dm.io.route_table("hle", "nowhere")

    def test_stats_track_queries_and_edits(self, dm):
        dm.io.stats.reset()
        dm.io.execute(Select("hle"))
        dm.io.execute(Insert("admin_config", {
            "config_id": 7, "section": "s", "key": "k2",
        }))
        assert dm.io.stats.queries == 1
        assert dm.io.stats.edits == 1

    def test_store_and_read_payload(self, dm):
        item = dm.io.store_payload("products/x.bin", b"xyz")
        dm.io.names.register_file("item:x", item.archive_id, item.rel_path)
        payload = dm.io.read_item(dm.io.names.resolve_files("item:x")[0])
        assert payload == b"xyz"
        assert dm.io.stats.files_written == 1
        assert dm.io.stats.bytes_read == 3


class TestSemanticLayer:
    def test_insert_hle_registers_tuple_reference(self, dm):
        alice = dm.users.create_user("alice", "pw", group="scientist")
        hle_id = dm.semantic.insert_hle(alice, {"start_time": 0.0, "end_time": 10.0})
        refs = dm.io.names.resolve_tuple(f"hle:{hle_id}")
        assert refs and refs[0].path == "hle"

    def test_upload_right_required(self, dm):
        guest = dm.users.create_user("guest", "pw", group="guest")
        with pytest.raises(AuthError):
            dm.semantic.insert_hle(guest, {"start_time": 0.0, "end_time": 1.0})

    def test_import_analysis_files_and_counter(self, loaded_dm):
        dm, _units, _catalog = loaded_dm
        alice = dm.users.find("alice")
        hle = dm.semantic.find_hles(alice)[0]
        ana_id = dm.semantic.import_analysis(alice, hle["hle_id"], _product(), {})
        stored = dm.io.names.resolve_files(f"ana:{ana_id}")
        roles = sorted(name.role for name in stored)
        assert roles == ["image", "log", "params"]
        updated = dm.semantic.get_hle(alice, hle["hle_id"])
        assert updated["n_analyses"] == hle["n_analyses"] + 1

    def test_private_analysis_hidden_until_published(self, loaded_dm):
        dm, _units, _catalog = loaded_dm
        alice = dm.users.find("alice")
        bob = dm.users.create_user("bob", "pw", group="user")
        hle = dm.semantic.find_hles(alice)[0]
        ana_id = dm.semantic.import_analysis(alice, hle["hle_id"], _product(), {})
        with pytest.raises(EntityNotFound):
            dm.semantic.get_analysis(bob, ana_id)
        dm.semantic.publish_analysis(alice, ana_id)
        assert dm.semantic.get_analysis(bob, ana_id)["ana_id"] == ana_id

    def test_only_owner_may_publish(self, loaded_dm):
        dm, _units, _catalog = loaded_dm
        alice = dm.users.find("alice")
        mallory = dm.users.create_user("mallory", "pw", group="scientist")
        hle = dm.semantic.find_hles(alice)[0]
        ana_id = dm.semantic.import_analysis(alice, hle["hle_id"], _product(), {})
        with pytest.raises(EntityNotFound):
            # mallory cannot even see it, let alone publish it
            dm.semantic.publish_analysis(mallory, ana_id)

    def test_delete_hle_blocked_by_analyses(self, loaded_dm):
        dm, _units, _catalog = loaded_dm
        alice = dm.users.find("alice")
        hle_id = dm.semantic.insert_hle(alice, {"start_time": 0.0, "end_time": 1.0})
        dm.semantic.import_analysis(alice, hle_id, _product(), {})
        with pytest.raises(ConstraintViolation):
            dm.semantic.delete_hle(alice, hle_id)

    def test_delete_analysis_then_hle(self, dm):
        alice = dm.users.create_user("alice", "pw", group="scientist")
        hle_id = dm.semantic.insert_hle(alice, {"start_time": 0.0, "end_time": 1.0})
        ana_id = dm.semantic.import_analysis(alice, hle_id, _product(), {})
        dm.semantic.delete_analysis(alice, ana_id)
        assert dm.semantic.get_hle(alice, hle_id)["n_analyses"] == 0
        dm.semantic.delete_hle(alice, hle_id)
        with pytest.raises(EntityNotFound):
            dm.semantic.get_hle(alice, hle_id)

    def test_redundant_work_detection(self, dm):
        """§3.5: HEDC checks whether an analysis was already done."""
        alice = dm.users.create_user("alice", "pw", group="scientist")
        hle_id = dm.semantic.insert_hle(alice, {"start_time": 0.0, "end_time": 1.0})
        assert dm.semantic.find_existing_analysis(alice, hle_id, "imaging") is None
        dm.semantic.import_analysis(alice, hle_id, _product(), {})
        existing = dm.semantic.find_existing_analysis(alice, hle_id, "imaging")
        assert existing is not None

    def test_catalog_membership(self, dm):
        alice = dm.users.create_user("alice", "pw", group="scientist")
        hle_id = dm.semantic.insert_hle(alice, {"start_time": 0.0, "end_time": 1.0,
                                                "public": True})
        catalog_id = dm.semantic.create_catalog(alice, "mine", public=True)
        dm.semantic.add_to_catalog(alice, catalog_id, hle_id)
        members = dm.semantic.catalog_hles(None, catalog_id)
        assert [m["hle_id"] for m in members] == [hle_id]
        assert dm.semantic.get_catalog(None, catalog_id)["n_members"] == 1

    def test_private_catalog_members_hidden_from_others(self, dm):
        alice = dm.users.create_user("alice", "pw", group="scientist")
        bob = dm.users.create_user("bob", "pw", group="user")
        private_hle = dm.semantic.insert_hle(alice, {"start_time": 0.0, "end_time": 1.0})
        catalog_id = dm.semantic.create_catalog(alice, "shared", public=True)
        dm.semantic.add_to_catalog(alice, catalog_id, private_hle)
        assert dm.semantic.catalog_hles(bob, catalog_id) == []
        assert len(dm.semantic.catalog_hles(alice, catalog_id)) == 1


class TestProcessLayer:
    def test_load_creates_unit_hles_views(self, loaded_dm):
        dm, units, catalog_id = loaded_dm
        rows = dm.io.execute(Select("raw_units"))
        assert len(rows) == len(units)
        hles = dm.semantic.find_hles(None)
        assert hles  # the flare was found
        views = dm.io.execute(Select("views"))
        assert len(views) == len(units)
        assert views[0]["encoded_bytes"] > 0

    def test_loaded_photons_round_trip(self, loaded_dm):
        dm, units, _catalog = loaded_dm
        photons = dm.process.load_photons(units[0].unit_id)
        assert len(photons) == units[0].n_photons

    def test_view_query_matches_binned_counts(self, loaded_dm):
        dm, units, _catalog = loaded_dm
        photons = dm.process.load_photons(units[0].unit_id)
        view = dm.process.get_view(units[0].unit_id)
        points, values, _bytes = view.query(view.domain_start, view.domain_end)
        assert values.sum() == pytest.approx(len(photons), rel=0.02)

    def test_units_covering_window(self, loaded_dm):
        dm, units, _catalog = loaded_dm
        hits = dm.process.units_covering(units[0].start, units[0].end)
        assert units[0].unit_id in {row["unit_id"] for row in hits}

    def test_archive_relocation_workflow(self, loaded_dm, tmp_path):
        dm, units, _catalog = loaded_dm
        cold = DiskArchive("cold", tmp_path / "cold")
        dm.io.storage.register(cold)
        dm.io.names.register_archive("cold", str(cold.root))
        moved = dm.process.relocate_archive("main", "cold")
        assert moved > 0
        # Data still reachable through name mapping after relocation.
        photons = dm.process.load_photons(units[0].unit_id)
        assert len(photons) == units[0].n_photons
        lineage = dm.io.execute(Select("ops_lineage"))
        assert any(row["kind"] == "migration" for row in lineage)

    def test_recalibration_creates_versioned_unit(self, loaded_dm):
        dm, units, _catalog = loaded_dm
        version = dm.process.publish_calibration((1.05,) * 9, (0.2,) * 9, note="test")
        assert version == 2
        new_unit_id = dm.process.recalibrate_unit(units[0].unit_id, "main")
        assert new_unit_id != units[0].unit_id
        old_row = dm.io.execute(
            Select("raw_units", where=Comparison("unit_id", "=", units[0].unit_id))
        )[0]
        assert old_row["superseded_by"] == new_unit_id
        new_row = dm.io.execute(
            Select("raw_units", where=Comparison("unit_id", "=", new_unit_id))
        )[0]
        assert new_row["calibration_version"] == 2
        lineage = dm.io.execute(Select("ops_lineage"))
        assert any(row["kind"] == "recalibration" for row in lineage)

    def test_recalibrate_current_version_is_noop(self, loaded_dm):
        dm, units, _catalog = loaded_dm
        assert dm.process.recalibrate_unit(units[0].unit_id, "main") == units[0].unit_id

    def test_generate_catalog_from_predicate(self, loaded_dm):
        dm, _units, _catalog = loaded_dm
        catalog_id = dm.process.generate_catalog(
            "bright", Comparison("peak_rate", ">", 0.0), public=True
        )
        members = dm.semantic.catalog_hles(None, catalog_id)
        assert len(members) == len(dm.semantic.find_hles(None))

    def test_missing_view_raises(self, dm):
        with pytest.raises(WorkflowError):
            dm.process.get_view("ghost-unit")

    def test_sync_archive_status(self, loaded_dm):
        dm, _units, _catalog = loaded_dm
        dm.process.sync_archive_status()
        rows = dm.io.execute(Select("ops_archives"))
        assert {row["archive_id"] for row in rows} >= {"main"}
        main = next(row for row in rows if row["archive_id"] == "main")
        assert main["bytes_stored"] > 0


class TestSessions:
    def test_three_kinds_per_user(self, dm):
        alice = dm.users.create_user("alice", "pw")
        cache = dm.sessions
        for kind in ("hle", "ana", "catalog"):
            session = cache.get_or_create(alice, kind, "10.0.0.1")
            assert session.kind == kind
        assert cache.size == 3

    def test_lookup_requires_matching_ip_and_cookie(self, dm):
        alice = dm.users.create_user("alice", "pw")
        session = dm.sessions.create(alice, "hle", "10.0.0.1")
        assert dm.sessions.lookup(alice, "hle", "10.0.0.1", session.cookie) is session
        assert dm.sessions.lookup(alice, "hle", "10.9.9.9", session.cookie) is None
        assert dm.sessions.lookup(alice, "hle", "10.0.0.1", "bad-cookie") is None

    def test_get_or_create_reuses(self, dm):
        alice = dm.users.create_user("alice", "pw")
        first = dm.sessions.get_or_create(alice, "hle", "10.0.0.1")
        second = dm.sessions.get_or_create(alice, "hle", "10.0.0.1", cookie=first.cookie)
        assert first is second
        assert dm.sessions.hits == 1

    def test_view_caching_in_session(self, dm):
        alice = dm.users.create_user("alice", "pw")
        session = dm.sessions.create(alice, "hle", "10.0.0.1")
        session.cache_view("recent", [{"hle_id": 1}])
        assert session.cached_view("recent") == [{"hle_id": 1}]
        assert session.cached_view("other") is None

    def test_invalidate_user_drops_cookie_lookup(self, dm):
        alice = dm.users.create_user("alice", "pw")
        session = dm.sessions.create(alice, "hle", "10.0.0.1")
        assert dm.sessions.by_cookie(session.cookie) is session
        dm.sessions.invalidate_user(alice.user_id)
        assert dm.sessions.by_cookie(session.cookie) is None

    def test_ttl_expiry(self):
        cache = SessionCache(ttl_s=0.0)
        from repro.security import User

        user = User(1, "u", "user", frozenset({"browse"}))
        session = cache.create(user, "hle", "ip")
        import time

        time.sleep(0.01)
        assert cache.lookup(user, "hle", "ip", session.cookie) is None

    def test_unknown_kind_rejected(self, dm):
        alice = dm.users.create_user("alice", "pw")
        with pytest.raises(ValueError):
            dm.sessions.create(alice, "weird", "ip")


class TestRedirection:
    def test_calls_balance_across_nodes(self, tmp_path):
        shared_dm = DataManager.standalone(tmp_path / "node0")
        second = DataManager(
            shared_dm.io.default_database, shared_dm.io.storage,
            node_name="dm1", install_schema=False,
        )
        router = DmRouter()
        router.add_node(shared_dm)
        router.add_node(second)
        seen = []
        for _call in range(10):
            router.call(lambda node: seen.append(node.node_name))
        assert set(seen) == {"dm0", "dm1"}
        assert router.stats(0).calls + router.stats(1).calls == 10

    def test_force_local_overwrite(self, tmp_path):
        dm0 = DataManager.standalone(tmp_path / "n0")
        dm1 = DataManager(dm0.io.default_database, dm0.io.storage,
                          node_name="dm1", install_schema=False)
        router = DmRouter()
        router.add_node(dm0)
        router.add_node(dm1)
        names = {router.call(lambda node: node.node_name, force_local=True)
                 for _ in range(5)}
        assert names == {"dm0"}

    def test_async_submit(self, tmp_path):
        dm0 = DataManager.standalone(tmp_path / "n0")
        router = DmRouter()
        router.add_node(dm0)
        future = router.submit(lambda node: node.node_name)
        assert future.result(timeout=5) == "dm0"
        router.drain()

    def test_errors_are_counted_and_propagated(self, tmp_path):
        dm0 = DataManager.standalone(tmp_path / "n0")
        router = DmRouter()
        router.add_node(dm0)

        def boom(node):
            raise RuntimeError("nope")

        with pytest.raises(RuntimeError):
            router.call(boom, force_local=True)
        assert router.stats(0).errors == 1

    def test_empty_router_rejected(self):
        router = DmRouter()
        with pytest.raises(RuntimeError):
            router.call(lambda node: None)
