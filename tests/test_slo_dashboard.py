"""SLOs, burn-rate alerts, health rollup, canary and the dashboard.

The PR-10 acceptance path lives here: drive the serving stack to 2x its
measured capacity, watch the browse-class latency SLO burn its budget,
see the fast-window alert fire as a structured event with an attributed
cause, read it all off ``/hedc/dashboard`` (text and JSON), then watch
the alert clear — with hysteresis — once the load drops.
"""

import json
import threading
import time

import pytest

from repro.obs import (
    DEGRADED,
    GREEN,
    NO_DATA,
    Observability,
    RED,
    Slo,
    TimeSeriesStore,
    default_slos,
)
from repro.resil import FaultInjector, use_injector
from repro.web.loadgen import (
    browse_mix,
    build_serving_stack,
    run_closed_loop,
    run_open_loop,
)


# -- Slo definitions ----------------------------------------------------------

class TestSloDefinitions:
    def test_validation_rejects_malformed_objectives(self):
        with pytest.raises(ValueError, match="objective"):
            Slo(name="x", kind="ratio", objective=1.0,
                bad_family="b", total_family="t")
        with pytest.raises(ValueError, match="kind"):
            Slo(name="x", kind="vibes", objective=0.9)
        with pytest.raises(ValueError, match="threshold_s"):
            Slo(name="x", kind="latency", objective=0.9, route_class="browse")
        with pytest.raises(ValueError, match="bad_family"):
            Slo(name="x", kind="ratio", objective=0.9)
        with pytest.raises(ValueError, match="route_class"):
            Slo(name="x", kind="availability", objective=0.9)

    def test_defaults_are_seeded_from_calibration(self):
        from repro.evalmodel.calibration import (
            SLO_AVAILABILITY,
            SLO_LATENCY_OBJECTIVE,
            SLO_LATENCY_S,
        )

        slos = {slo.name: slo for slo in default_slos()}
        for cls, objective in SLO_AVAILABILITY.items():
            assert slos[f"{cls}-availability"].objective == objective
        for cls, threshold_s in SLO_LATENCY_S.items():
            latency = slos[f"{cls}-latency"]
            assert latency.threshold_s == threshold_s
            assert latency.objective == SLO_LATENCY_OBJECTIVE
            assert latency.route_class == cls

    def test_ensure_defaults_does_not_override_explicit(self):
        obs = Observability()
        obs.slo.define(Slo(name="mine", kind="ratio", objective=0.9,
                           bad_family="b", total_family="t"))
        obs.slo.ensure_defaults()
        assert list(obs.slo.slos) == ["mine"]
        obs.slo.reset()
        obs.slo.ensure_defaults()
        assert "browse-latency" in obs.slo.slos


# -- burn-rate alert state machine -------------------------------------------

def _ratio_manager(**overrides):
    """An SloManager with one ratio SLO, driven by a hand-built store."""
    obs = Observability(name="slo-unit")
    spec = dict(
        name="completeness", kind="ratio", objective=0.9,
        bad_family="bad", total_family="total",
        fast_window_s=5.0, slow_window_s=10.0,
        fast_burn_threshold=2.0, slow_burn_threshold=1000.0,
        clear_burn_threshold=1.0, clear_after_s=2.0, min_events=5,
    )
    spec.update(overrides)
    obs.slo.define(Slo(**spec))
    return obs, obs.slo, TimeSeriesStore()


class TestBurnRateAlerts:
    def test_fast_window_fires_on_a_cliff(self):
        obs, manager, store = _ratio_manager()
        total = bad = 0
        for t in range(1, 6):          # healthy: 10 events/s, none bad
            total += 10
            store.record("total", {}, "value", float(t), total)
            store.record("bad", {}, "value", float(t), bad)
            manager.evaluate(float(t), store)
        assert manager.active_alerts() == []
        for t in range(6, 9):          # cliff: half of everything fails
            total += 10
            bad += 5
            store.record("total", {}, "value", float(t), total)
            store.record("bad", {}, "value", float(t), bad)
            manager.evaluate(float(t), store)
        fired = manager.active_alerts()
        assert [(a["slo"], a["window"]) for a in fired] == [
            ("completeness", "fast"),
        ]
        assert fired[0]["burn"] >= 2.0
        events = obs.events.find("slo.alert_fired")
        assert len(events) == 1
        assert events[0].severity == "error"
        assert events[0].fields["slo"] == "completeness"
        assert events[0].fields["window"] == "fast"

    def test_min_events_guard_suppresses_tiny_samples(self):
        obs, manager, store = _ratio_manager(min_events=50)
        total = bad = 0
        for t in range(1, 10):         # 100% failure, but 2 events/s
            total += 2
            bad += 2
            store.record("total", {}, "value", float(t), total)
            store.record("bad", {}, "value", float(t), bad)
            manager.evaluate(float(t), store)
        assert manager.active_alerts() == []

    def test_no_data_never_clears_a_firing_alert(self):
        obs, manager, store = _ratio_manager()
        for t in range(1, 8):
            store.record("total", {}, "value", float(t), 10.0 * t)
            store.record("bad", {}, "value", float(t), 5.0 * t)
            manager.evaluate(float(t), store)
        assert manager.active_alerts()
        # The signal goes dark: no new samples, windows age out to
        # NO_DATA.  Absence of evidence is not recovery — hold the alert
        # far past clear_after_s.
        for t in range(100, 120):
            manager.evaluate(float(t), store)
        fired = manager.active_alerts()
        assert fired and fired[0]["burn"] is None

    def test_hysteresis_requires_sustained_recovery(self):
        obs, manager, store = _ratio_manager()

        def sample(t, total, bad):
            store.record("total", {}, "value", float(t), float(total))
            store.record("bad", {}, "value", float(t), float(bad))
            manager.evaluate(float(t), store)

        total = bad = 0
        for t in range(1, 6):
            total, bad = total + 10, bad + 8
            sample(t, total, bad)
        assert manager.active_alerts()
        # One good sample is not recovery: the window still carries the
        # incident, and even once the burn dips it must *stay* down.
        for t in range(6, 20):
            total += 10                # healthy from here on
            sample(t, total, bad)
            if manager.active_alerts() == []:
                cleared_at = t
                break
        else:
            pytest.fail("alert never cleared after recovery")
        # The burn reached zero once the 5 s window slid past the last
        # failure (t=5 -> zero burn from t=10); the clear needed 2 s of
        # sustained below-threshold on top.
        assert cleared_at >= 12
        events = obs.events.find("slo.alert_cleared")
        assert len(events) == 1 and events[0].severity == "info"

    def test_cause_is_resolved_at_fire_time(self):
        obs, manager, store = _ratio_manager()
        manager.cause_resolver = lambda slo, window: "metadb: shard 1 down"
        for t in range(1, 8):
            store.record("total", {}, "value", float(t), 10.0 * t)
            store.record("bad", {}, "value", float(t), 5.0 * t)
            manager.evaluate(float(t), store)
        fired = manager.active_alerts()
        assert fired[0]["cause"] == "metadb: shard 1 down"
        event = obs.events.find("slo.alert_fired")[0]
        assert event.fields["cause"] == "metadb: shard 1 down"

    def test_report_cleans_no_data_for_json(self):
        obs, manager, store = _ratio_manager()
        manager.evaluate(1.0, store)   # nothing recorded: all NO_DATA
        report = manager.report()
        entry = report["slos"]["completeness"]
        assert entry["fast"]["burn"] is None
        assert entry["budget_used_fraction"] is None
        json.dumps(report)             # strictly serialisable


# -- health rollup ------------------------------------------------------------

class TestHealthRollup:
    def test_everything_green_without_sources(self):
        obs = Observability()
        report = obs.health.report()
        assert report["status"] == GREEN
        assert report["causes"] == []
        assert report["subsystems"]["canary"]["detail"]["enabled"] is False
        assert obs.health.attributed_cause() == (
            "no attributed cause (all subsystems green)"
        )

    def test_open_shard_breaker_is_red_with_named_range(self):
        obs = Observability()
        obs.health.add_source("shard", lambda: {
            "n_shards": 3,
            "degraded_reads": 4,
            "shards": [
                {"shard_id": 0, "low": None, "high": 100.0,
                 "breaker": "closed"},
                {"shard_id": 1, "low": 100.0, "high": 200.0,
                 "breaker": "open"},
            ],
        })
        report = obs.health.report()
        assert report["status"] == RED
        metadb = report["subsystems"]["metadb"]
        assert metadb["status"] == RED
        assert any("shard 1 down" in cause and "[100.0, 200.0)" in cause
                   for cause in metadb["causes"])
        assert any("PartialResult" in cause for cause in metadb["causes"])
        # Worst-first: the red shard cause outranks the degraded note.
        assert obs.health.attributed_cause().startswith("metadb: ")

    def test_dead_and_lagging_replicas_degrade(self):
        obs = Observability()
        obs.health.add_source("repl", lambda: {"replicas": [
            {"name": "r1", "state": "dead", "lag": 0},
            {"name": "r2", "state": "in_sync", "lag": 9},
            {"name": "r3", "state": "in_sync", "lag": 0},
        ]})
        metadb = obs.health.report()["subsystems"]["metadb"]
        assert metadb["status"] == DEGRADED
        assert len(metadb["causes"]) == 2
        assert any("dead" in cause for cause in metadb["causes"])
        assert any("lagging 9 entries" in cause for cause in metadb["causes"])

    def test_admission_queue_pressure_and_backlog(self):
        obs = Observability()
        serving = {"n_workers": 4, "queue": {
            "depth": {"browse": 9}, "max_queue_depth": 10,
        }, "routes": {}}
        obs.health.add_source("serving", lambda: serving)
        sub = obs.health.report()["subsystems"]["serving"]
        assert sub["status"] == DEGRADED
        assert "admission queue at 9/10" in sub["causes"][0]
        # Deep queue, nowhere near capacity — the backlog itself is the
        # cause once it exceeds a few requests per worker.
        serving["queue"] = {"depth": {"browse": 40}, "max_queue_depth": 500}
        sub = obs.health.report()["subsystems"]["serving"]
        assert sub["status"] == DEGRADED
        assert "admission backlog: 40 requests queued" in sub["causes"][0]

    def test_torn_wal_tail_is_called_out(self):
        obs = Observability()
        obs.events.enabled = True
        obs.event("warn", "metadb", "wal.torn_tail",
                  "torn tail truncated", db="d0")
        sub = obs.health.report()["subsystems"]["wal"]
        assert sub["status"] == DEGRADED
        assert "torn WAL tail" in sub["causes"][0]

    def test_broken_source_never_breaks_the_rollup(self):
        obs = Observability()
        obs.health.add_source("shard", lambda: 1 / 0)
        report = obs.health.report()
        assert report["status"] == GREEN


# -- canary probe -------------------------------------------------------------

class TestCanaryProbe:
    def test_canary_flips_health_red_and_back(self, tmp_path):
        obs = Observability(name="canary-test")
        stack = build_serving_stack(tmp_path / "canary", n_hles=4,
                                    rtt_s=0.0, obs=obs)
        try:
            canary = stack.web.enable_canary(interval_s=5.0)
            assert canary.probe() is True
            assert obs.registry.value("obs.canary.ok") == 1
            sub = obs.health.report()["subsystems"]["canary"]
            assert sub["status"] == GREEN and sub["detail"]["enabled"]

            injector = FaultInjector(seed=7)
            injector.inject("metadb.statement", rate=1.0)
            with use_injector(injector):
                assert canary.probe() is False
            assert obs.registry.value("obs.canary.ok") == 0
            report = obs.health.report()
            assert report["status"] == RED
            assert any("web→DM→metadb" in cause for cause in report["causes"])
            assert obs.events.find("canary.failed")

            # The path heals; the next probe turns the light green again.
            assert canary.probe() is True
            assert obs.health.report()["status"] == GREEN
        finally:
            stack.shutdown()

    def test_probe_rate_limited_by_collector_time(self, tmp_path):
        obs = Observability(name="canary-rate")
        stack = build_serving_stack(tmp_path / "rate", n_hles=4,
                                    rtt_s=0.0, obs=obs)
        try:
            canary = stack.web.enable_canary(interval_s=5.0)
            canary(now=0.0)
            canary(now=1.0)            # inside the interval: skipped
            assert obs.registry.family_total("obs.canary.probes") == 1
            canary(now=6.0)
            assert obs.registry.family_total("obs.canary.probes") == 2
        finally:
            stack.shutdown()


# -- dashboard servlet --------------------------------------------------------

class TestDashboardServlet:
    @pytest.fixture()
    def stack(self, tmp_path):
        obs = Observability(name="dash")
        stack = build_serving_stack(tmp_path / "dash", n_hles=6,
                                    rtt_s=0.0, obs=obs)
        for tick in range(3):
            response = stack.web.handle(
                stack.request(f"/hedc/hle?id={stack.hle_ids[tick]}"))
            assert response.status == 200
            obs.collector.sample_once(now=float(tick))
        yield stack
        stack.shutdown()

    def test_text_dashboard_renders_all_sections(self, stack):
        response = stack.web.handle(stack.request("/hedc/dashboard"))
        assert response.status == 200
        assert response.content_type == "text/plain"
        text = response.text
        assert "HEDC dashboard — status: GREEN" in text
        assert "health:" in text and "canary" in text
        assert "alerts (0 active):" in text
        assert "slos:" in text
        assert "timelines (last 5m):" in text
        assert "req/s" in text

    def test_json_dashboard_is_machine_readable(self, stack):
        response = stack.web.handle(
            stack.request("/hedc/dashboard?format=json"))
        assert response.status == 200
        assert response.content_type == "application/json"
        body = json.loads(response.text)
        assert body["status"] == "green"
        assert set(body) >= {"health", "slos", "active_alerts",
                             "collector", "runtime", "timelines"}
        assert body["runtime"]["threads"] >= 1
        assert body["runtime"]["rss_bytes"] is None or \
            body["runtime"]["rss_bytes"] > 0
        assert body["collector"]["samples"] >= 3
        assert "req/s" in body["timelines"]

    def test_metrics_json_carries_runtime_gauges(self, stack):
        response = stack.web.handle(stack.request("/hedc/metrics?format=json"))
        body = json.loads(response.text)
        runtime = body["runtime"]
        assert runtime["threads"] >= 1
        assert runtime["uptime_s"] > 0
        assert "open_wal_handles" in runtime
        assert "gc_collections" in runtime


# -- loadgen timelines --------------------------------------------------------

class TestLoadgenTimelines:
    def test_closed_loop_yields_per_class_timelines(self, tmp_path):
        stack = build_serving_stack(tmp_path / "tl", n_hles=6, rtt_s=0.0,
                                    scheduler="pool", n_workers=4)
        try:
            result = run_closed_loop(stack, browse_mix(stack),
                                     n_clients=4, duration_s=0.4)
        finally:
            stack.shutdown()
        timeline = result.timeline(bucket_s=0.1)
        assert "browse" in timeline
        rows = timeline["browse"]
        assert rows and all(
            set(row) == {"t_s", "sent", "ok", "goodput_rps", "p50_s", "p95_s"}
            for row in rows
        )
        assert sum(row["sent"] for row in rows) == result.sent
        assert rows == result.summary(bucket_s=0.1)["timeline"]["browse"]


# -- the acceptance path ------------------------------------------------------

class TestOverloadEndToEnd:
    def test_browse_latency_alert_fires_under_2x_overload_then_clears(
            self, tmp_path):
        obs = Observability(name="e2e")
        stack = build_serving_stack(
            tmp_path / "e2e", n_hles=12, rtt_s=0.004, obs=obs,
            scheduler="pool", n_workers=4, max_queue_depth=64,
        )
        collector = obs.collector
        try:
            obs.slo.define(Slo(
                name="browse-latency", kind="latency", objective=0.9,
                route_class="browse", threshold_s=0.06,
                description="browse pages under 60 ms",
                fast_window_s=3.0, slow_window_s=10.0,
                fast_burn_threshold=2.0, slow_burn_threshold=10_000.0,
                clear_burn_threshold=1.0, clear_after_s=1.5, min_events=10,
            ))
            capacity = run_closed_loop(stack, browse_mix(stack),
                                       n_clients=8,
                                       duration_s=0.5).throughput_rps
            assert capacity > 0
            # Baseline sample: everything up to here anchors the windows.
            collector.sample_once(now=0.0)

            # 2x overload, open loop: arrivals don't slow down when the
            # server does, so queue waits blow through the threshold.
            outcome = []
            loader = threading.Thread(target=lambda: outcome.append(
                run_open_loop(stack, browse_mix(stack),
                              rate_rps=2.0 * capacity, duration_s=1.0)))
            loader.start()
            # Sample mid-overload, once the backlog is visibly deep, so
            # the firing alert can attribute its cause to the queue.
            deadline = time.perf_counter() + 1.0
            while time.perf_counter() < deadline:
                queue = stack.web.serving_report()["queue"]
                if sum(queue["depth"].values()) >= 16:
                    break
                time.sleep(0.01)
            collector.sample_once(now=1.0)
            loader.join()
            collector.sample_once(now=2.0)

            overload = outcome[0]
            assert overload.sent >= 20
            fired = obs.slo.active_alerts()
            assert [(a["slo"], a["window"]) for a in fired] == [
                ("browse-latency", "fast"),
            ], f"expected the fast browse-latency alert, got {fired}"
            assert fired[0]["burn"] >= 2.0
            assert fired[0]["cause"]           # attributed, never empty
            event = obs.events.find("slo.alert_fired")[0]
            assert event.fields["slo"] == "browse-latency"
            assert "cause" in event.fields

            # The incident is on the dashboard — text...
            text = stack.web.handle(stack.request("/hedc/dashboard")).text
            assert "browse-latency [fast] FIRING" in text
            # ...and JSON, with the error-budget burn visible.
            body = json.loads(stack.web.handle(
                stack.request("/hedc/dashboard?format=json")).text)
            assert body["active_alerts"][0]["slo"] == "browse-latency"
            assert body["slos"]["browse-latency"]["budget_used_fraction"] > 0

            # Load drops: light traffic meets the SLO again, and after
            # the hysteresis hold the alert clears.
            cleared_at = None
            for t in range(3, 10):
                for _probe in range(4):
                    response = stack.web.handle(stack.request(
                        f"/hedc/hle?id={stack.hle_ids[t % 12]}"))
                    assert response.status == 200
                collector.sample_once(now=float(t))
                if not obs.slo.active_alerts():
                    cleared_at = t
                    break
            assert cleared_at is not None, "alert never cleared"
            assert cleared_at >= 6     # hysteresis: window ages out at 5,
            #                            plus 1.5 s sustained below-clear
            assert obs.events.find("slo.alert_cleared")
            body = json.loads(stack.web.handle(
                stack.request("/hedc/dashboard?format=json")).text)
            assert body["active_alerts"] == []
        finally:
            stack.shutdown()
