"""End-to-end deep diagnostics over a full deployment.

One seeded scenario drives web -> DM -> metadb and PL -> IDL traffic
through a complete :class:`~repro.core.Hedc` with tracing, the slow log
and chaos armed, then asserts the whole diagnostic chain holds together:

* a deliberately slow query (an injected ``metadb.statement`` stall)
  lands in the slow log *with its access plan*;
* histogram exemplars resolve to the matching trace tree;
* breaker state transitions appear in the event log with trace/span
  correlation;
* ``repro.obs.usage`` reproduces the paper's §7-style request-mix table
  within tolerance of the raw counters.
"""

from __future__ import annotations

import json
import time

import pytest

from repro.core import Hedc
from repro.obs import Observability, trace_profile
from repro.resil import BreakerState, FaultInjector, use_injector
from repro.web.http import HttpRequest

CHAOS_SEED = 2003


@pytest.fixture(scope="module")
def hedc(tmp_path_factory):
    """A small deployment with tracing on and slow thresholds armed."""
    obs = Observability(enabled=True)
    deployment = Hedc.create(tmp_path_factory.mktemp("diag-e2e"), obs=obs)
    deployment.ingest_observation(duration_s=120.0, seed=21,
                                  unit_target_photons=150_000)
    deployment.register_user("reader", "reader-pw")
    obs.slowlog.configure("metadb.execute", 0.02)
    obs.slowlog.configure("pl.run", 0.0)
    return deployment


@pytest.fixture(scope="module")
def driven(hedc):
    """Drive the traffic once; every test below reads the diagnostics."""
    client = hedc.thin_client()
    assert client.login("reader", "reader-pw")
    events = hedc.events()
    assert events, "ingest must produce at least one HLE"
    hle_id = events[0]["hle_id"]

    injector = FaultInjector(seed=CHAOS_SEED, obs=hedc.obs)
    # One deliberately slow query: the next metadb statement stalls 50ms,
    # past the 20ms slow threshold.
    injector.inject("metadb.statement", rate=1.0, error=None,
                    delay_s=0.05, times=1)
    with use_injector(injector):
        browses = [client.browse_hle(hle_id) for _ in range(4)]

        # A persistently crashing IDL tier: every invocation fails after
        # the retry/restart machinery is exhausted, so the pl.idl breaker
        # (min_calls=10, failure_rate=0.6) trips open.
        injector.inject("idl.crash", rate=1.0)
        user = hedc.login("reader", "reader-pw")
        analyses = [
            hedc.analyze(user, hle_id, "lightcurve",
                         parameters={"n_bins": 8 + index})
            for index in range(12)
        ]
    return {
        "client": client,
        "hle_id": hle_id,
        "browses": browses,
        "analyses": analyses,
        "injector": injector,
    }


class TestSlowLogCapture:
    def test_injected_stall_lands_in_slow_log_with_plan(self, hedc, driven):
        ops = hedc.obs.slowlog.records("metadb.execute")
        assert ops, "the 50ms injected stall must exceed the 20ms threshold"
        with_plan = [op for op in ops if "plan" in op.detail]
        assert with_plan, "slow SELECTs must carry their explain_plan()"
        op = with_plan[0]
        assert "access" in op.detail["plan"]
        assert "statement" in op.detail
        assert op.duration_s >= 0.02
        # Correlated: the slow op points into the trace that contained it.
        assert op.trace_id is not None

    def test_slow_pl_runs_carry_fingerprint(self, hedc, driven):
        ops = hedc.obs.slowlog.records("pl.run")
        assert ops
        assert all("fingerprint" in op.detail and "algorithm" in op.detail
                   for op in ops)


class TestExemplarResolution:
    def test_exemplar_trace_id_resolves_to_matching_trace_tree(self, hedc, driven):
        registry = hedc.obs.registry
        exemplars = []
        for metric in registry.family("web.request_s"):
            exemplars.extend(metric.exemplars())
        assert exemplars, "traced web requests must leave exemplars"
        roots = hedc.obs.tracer.finished_spans()
        by_trace = {root.trace_id: root for root in roots}
        resolved = [slot for slot in exemplars if slot["trace_id"] in by_trace]
        assert resolved, "at least one exemplar must resolve to a kept trace"
        slot = resolved[-1]
        root = by_trace[slot["trace_id"]]
        span_ids = {span.span_id for span in root.walk()}
        assert slot["span_id"] in span_ids
        assert root.find("web.handle") is not None
        # The resolved tree is profile-ready (per-span self time).
        profile = trace_profile(root)
        assert profile["critical_path"][0]["name"] == root.name


class TestBreakerEvents:
    def test_breaker_trip_appears_in_event_log_with_correlation(self, hedc, driven):
        assert hedc.idl.breaker.state is BreakerState.OPEN
        transitions = hedc.obs.events.find("breaker.transition")
        opened = [event for event in transitions
                  if event.fields["to_state"] == "open"]
        assert opened, "the tripped breaker must emit a transition event"
        event = opened[0]
        assert event.severity == "warn"
        assert event.fields["breaker"] == hedc.idl.breaker.name
        # record_failure happens inside the pl.run span -> correlated.
        assert event.trace_id is not None and event.span_id is not None

    def test_fault_firings_and_crash_restarts_are_logged(self, hedc, driven):
        fired = hedc.obs.events.find("fault.fired")
        points = {event.fields["point"] for event in fired}
        assert {"metadb.statement", "idl.crash"} <= points
        assert hedc.obs.events.find("server.crashed")
        assert hedc.obs.events.find("server.restarted")
        report = driven["injector"].report()
        assert report["metadb.statement"]["fired"] == 1
        assert report["idl.crash"]["fired"] >= 10


class TestUsageAnalytics:
    def test_request_mix_reproduces_raw_counters_within_tolerance(self, hedc, driven):
        from repro.obs import request_mix

        mix = request_mix(hedc.obs)
        raw_total = hedc.web.requests_served
        mix_total = sum(row["requests"] for row in mix.values())
        assert mix_total == raw_total
        assert sum(row["share"] for row in mix.values()) == pytest.approx(1.0)
        # The §7.2 browse shape: each browse is one HLE page plus its
        # images, so the /hedc/hle share must track pages/requests.
        hle_row = mix["/hedc/hle"]
        assert hle_row["requests"] == len(driven["browses"])
        expected_share = hle_row["requests"] / raw_total
        assert hle_row["share"] == pytest.approx(expected_share, rel=0.01)
        assert hle_row["statuses"]["200"] == len(driven["browses"])
        assert hle_row["p95_s"] >= hle_row["p50_s"] >= 0.0

    def test_tier_split_and_page_characteristics_are_consistent(self, hedc, driven):
        from repro.obs import page_characteristics, tier_time_split

        split = tier_time_split(hedc.obs)
        assert split["web_total_s"] > 0
        # db_s also counts DB work done outside web requests (ingest,
        # direct analyze calls), and the batched page fetch cut the
        # per-page web cost, so the db share can legitimately exceed 1.
        assert split["shares"]["db"] > 0.0
        pages = page_characteristics(hedc.obs, dm=hedc.dm)
        assert pages["hle_pages"] == len(driven["browses"])
        assert pages["bytes_per_request"] > 0
        # §7.2: "seven database queries" per HLE display page — the live
        # count stays the right order of magnitude (ingest and analysis
        # queries inflate the naive per-page ratio).
        assert pages["dm_queries_per_page"] > 0

    def test_calibration_drift_entries_cover_the_model_constants(self, hedc, driven):
        from repro.obs import calibration_drift, usage_report

        entries = calibration_drift(hedc.obs, dm=hedc.dm)
        metrics = {entry["metric"] for entry in entries}
        assert "html_bytes_per_request" in metrics
        assert "db_query_service_s" in metrics
        for entry in entries:
            assert entry["ratio"] == pytest.approx(
                entry["measured"] / entry["predicted"])
            assert isinstance(entry["drifted"], bool)
        report = usage_report(hedc.obs, dm=hedc.dm)
        json.dumps(report)      # the whole report is JSON-ready


class TestDebugServlet:
    def test_json_view_serves_the_whole_panel(self, hedc, driven):
        # The panel reports the *currently installed* injector's points.
        with use_injector(driven["injector"]):
            response = hedc.web.handle(
                HttpRequest.get("/hedc/debug?format=json", {}, "127.0.0.1"))
        assert response.status == 200
        body = json.loads(response.body)
        assert body["usage"]["request_mix"]
        assert body["events"], "event log must surface in the panel"
        assert body["slow_ops"]
        assert body["exemplars"]
        assert body["profiler"]["running"] is False
        assert hedc.idl.breaker.name in body["resilience"]["breakers"]
        assert "idl.crash" in body["resilience"]["faults"]

    def test_text_view_renders(self, hedc, driven):
        response = hedc.web.handle(HttpRequest.get("/hedc/debug", {}, "127.0.0.1"))
        assert response.status == 200
        text = response.text
        assert "request mix" in text
        assert "/hedc/hle" in text
        assert "breakers:" in text

    def test_metrics_json_includes_resilience(self, hedc, driven):
        with use_injector(driven["injector"]):
            response = hedc.web.handle(
                HttpRequest.get("/hedc/metrics?format=json", {}, "127.0.0.1"))
        body = json.loads(response.body)
        breakers = body["resilience"]["breakers"]
        assert hedc.idl.breaker.name in breakers
        snap = breakers[hedc.idl.breaker.name]
        assert {"state", "trips", "window"} <= set(snap)
        assert body["resilience"]["faults"]["idl.crash"]["rate"] == 1.0

    def test_telemetry_report_carries_resilience_and_diagnostics(self, hedc, driven):
        with use_injector(driven["injector"]):
            report = hedc.telemetry_report()
        assert hedc.idl.breaker.name in report["resilience"]["breakers"]
        assert report["resilience"]["faults"]["idl.crash"]["fired"] >= 10
        assert report["diagnostics"]["events"] >= 1
        assert report["diagnostics"]["slow_ops"] >= 1


class TestProfilerOverTraffic:
    def test_profiler_captures_live_traffic(self, hedc, driven):
        hedc.obs.profiler.start(hz=400.0)
        try:
            for _ in range(3):
                driven["client"].browse_hle(driven["hle_id"])
            time.sleep(0.05)    # guarantee a few sampler wakeups
        finally:
            samples = hedc.obs.profiler.stop()
        assert samples > 0
        collapsed = hedc.obs.profiler.collapsed()
        assert collapsed
        hedc.obs.profiler.reset()
