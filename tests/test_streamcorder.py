"""Tests for the StreamCorder fat client."""

import numpy as np
import pytest

from repro.streamcorder import CordletRegistry, StaticPathCache, StreamCorder
from repro.wavelets import encode


@pytest.fixture()
def server_with_data(dm, tmp_path):
    from repro.rhessi import TelemetryGenerator, package_units, standard_day_plan

    plan = standard_day_plan(duration=240.0, seed=17, n_flares=1, n_bursts=0, n_saa=0)
    photons = TelemetryGenerator(plan, seed=17).generate()
    units = package_units(photons, tmp_path / "in", unit_target_photons=10**6)
    for unit in units:
        dm.process.load_raw_unit(unit, "main")
    user = dm.users.create_user("alice", "pw", group="scientist")
    return dm, units, user


class TestStaticPathCache:
    def test_path_is_deterministic(self, tmp_path):
        cache = StaticPathCache(tmp_path)
        first = cache.path_for("data", "unit:x", created_at=100.0)
        second = cache.path_for("data", "unit:x", created_at=100.0)
        assert first == second
        assert "data" in str(first)

    def test_put_get_and_stats(self, tmp_path):
        cache = StaticPathCache(tmp_path)
        assert cache.get("data", "k") is None
        cache.put("data", "k", b"payload")
        assert cache.get("data", "k") == b"payload"
        assert cache.stats.hits == 1 and cache.stats.misses == 1
        assert cache.stats.hit_rate == 0.5

    def test_put_is_idempotent(self, tmp_path):
        cache = StaticPathCache(tmp_path)
        cache.put("data", "k", b"one")
        cache.put("data", "k", b"two")  # read-only data: first write wins
        assert cache.get("data", "k") == b"one"


class TestCordlets:
    def test_registry_offers_by_data_type(self):
        registry = CordletRegistry().load_defaults()
        offered = {cordlet.name for cordlet in registry.offered_for("photons")}
        assert offered == {"lightcurve", "histogram"}
        assert registry.offered_for("nothing") == []
        assert registry.get("density_plot") is not None
        assert registry.get("ghost") is None

    def test_lightcurve_cordlet(self, photons_small):
        registry = CordletRegistry().load_defaults()
        result = registry.get("lightcurve").run({"photons": photons_small})
        assert result["peak"][1] > 0
        assert result["image"].startswith(b"P5")

    def test_histogram_cordlet(self, photons_small):
        registry = CordletRegistry().load_defaults()
        result = registry.get("histogram").run(
            {"photons": photons_small, "attribute": "detector"}
        )
        assert result["counts"].sum() == len(photons_small)

    def test_progressive_view_cordlet(self):
        registry = CordletRegistry().load_defaults()
        signal = np.cumsum(np.ones(256))
        stream = encode(signal, quantizer_step=0.1)
        result = registry.get("progressive_view").run({"payload": stream.prefix(1)})
        assert len(result["values"]) == 256
        assert result["bytes_decoded"] < stream.total_bytes


class TestStreamCorderClient:
    def test_fetch_unit_then_cache_hit(self, server_with_data, tmp_path):
        dm, units, user = server_with_data
        client = StreamCorder(dm, user, tmp_path / "sc")
        first = client.fetch_unit(units[0].unit_id)
        downloads_after_first = client.downloads
        second = client.fetch_unit(units[0].unit_id)
        assert len(first) == len(second) == units[0].n_photons
        assert client.downloads == downloads_after_first  # served from cache

    def test_clone_cache_strategy_uses_local_dm(self, server_with_data, tmp_path):
        dm, units, user = server_with_data
        client = StreamCorder(dm, user, tmp_path / "sc", cache_strategy="clone")
        client.fetch_unit(units[0].unit_id)
        # The clone's metadata now references the cached object.
        from repro.metadb import Select

        local_files = client.local_dm.io.execute(Select("loc_files"))
        assert len(local_files) == 1
        assert client.clone_cache.stats.bytes_cached > 0

    def test_clone_schema_identical_to_server(self, server_with_data, tmp_path):
        """§6.2: every StreamCorder installation is a server clone."""
        dm, _units, user = server_with_data
        client = StreamCorder(dm, user, tmp_path / "sc", cache_strategy="clone")
        assert client.local_dm.io.default_database.table_names() == \
            dm.io.default_database.table_names()

    def test_invalid_cache_strategy_rejected(self, server_with_data, tmp_path):
        dm, _units, user = server_with_data
        with pytest.raises(ValueError):
            StreamCorder(dm, user, tmp_path / "sc", cache_strategy="magic")

    def test_local_job_execution(self, server_with_data, tmp_path):
        dm, units, user = server_with_data
        client = StreamCorder(dm, user, tmp_path / "sc")
        photons = client.fetch_unit(units[0].unit_id)
        result = client.run_job("lightcurve", {"photons": photons})
        assert result["peak"][1] > 0

    def test_unknown_cordlet_rejected(self, server_with_data, tmp_path):
        dm, _units, user = server_with_data
        client = StreamCorder(dm, user, tmp_path / "sc")
        with pytest.raises(KeyError):
            client.submit_job("warp_drive", {})

    def test_progressive_lightcurve_saves_bytes(self, server_with_data, tmp_path):
        dm, units, user = server_with_data
        client = StreamCorder(dm, user, tmp_path / "sc")
        result = client.progressive_lightcurve(units[0].unit_id, detail_levels=1)
        assert result["reduction_factor"] > 2.0
        assert result["bytes_saved"] > 0
        assert len(result["values"]) > 0

    def test_peer_to_peer_download(self, server_with_data, tmp_path):
        dm, units, user = server_with_data
        peer = StreamCorder(dm, user, tmp_path / "peer")
        peer.fetch_unit(units[0].unit_id)  # peer caches the unit
        client = StreamCorder(dm, user, tmp_path / "client")
        client.add_peer(peer)
        server_reads_before = dm.io.stats.files_read
        client.fetch_unit(units[0].unit_id)
        # Served by the peer: the server's file store was not touched.
        assert dm.io.stats.files_read == server_reads_before

    def test_mirror_hles_into_clone(self, server_with_data, tmp_path):
        dm, _units, user = server_with_data
        client = StreamCorder(dm, user, tmp_path / "sc", cache_strategy="clone")
        mirrored = client.mirror_hles()
        assert mirrored == len(dm.semantic.find_hles(user))
        assert client.mirror_hles() == 0  # idempotent

    def test_mirror_requires_clone_strategy(self, server_with_data, tmp_path):
        dm, _units, user = server_with_data
        client = StreamCorder(dm, user, tmp_path / "sc", cache_strategy="static")
        with pytest.raises(RuntimeError):
            client.mirror_hles()
