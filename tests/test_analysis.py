"""Tests for the analysis kernels and products."""

import json

import numpy as np
import pytest

from repro.analysis import (
    DEFAULT_PHASE_BINS,
    AnalysisProduct,
    CostModel,
    approximation_speedup,
    back_projection,
    back_projection_dense,
    clean_iterations,
    histogram,
    lightcurve,
    parse_pgm,
    predict,
    render_pgm,
    render_series_pgm,
    spectrogram,
)
from repro.rhessi import PhotonList, SolarFlare, TelemetryGenerator
from repro.rhessi.telemetry import ObservationPlan


@pytest.fixture(scope="module")
def flare_photons():
    plan = ObservationPlan(0.0, 240.0, background_rate=40.0)
    plan.add(SolarFlare(start=40.0, duration=120.0, goes_class="M",
                        position_arcsec=(250.0, -150.0)))
    return TelemetryGenerator(plan, seed=6).generate()


class TestLightcurve:
    def test_peak_near_flare_peak(self, flare_photons):
        curve = lightcurve(flare_photons, bin_width_s=2.0)
        peak_time, peak_rate = curve.peak()
        assert 50.0 < peak_time < 70.0  # rise is 15% of 120 s after t=40
        assert peak_rate > 500.0

    def test_band_rates_sum_to_total(self, flare_photons):
        curve = lightcurve(flare_photons, bin_width_s=4.0)
        assert np.allclose(curve.total_rate(), curve.rates.sum(axis=0))

    def test_explicit_window(self, flare_photons):
        curve = lightcurve(flare_photons, bin_width_s=4.0, start=0.0, end=40.0)
        assert curve.n_bins == 10

    def test_band_selection(self, flare_photons):
        curve = lightcurve(flare_photons, bands=[(3.0, 25.0), (25.0, 300.0)])
        assert curve.rates.shape[0] == 2
        assert curve.band_series(0).sum() > curve.band_series(1).sum()  # soft dominates

    def test_invalid_parameters(self, flare_photons):
        with pytest.raises(ValueError):
            lightcurve(flare_photons, bin_width_s=0)
        with pytest.raises(ValueError):
            lightcurve(flare_photons, start=10.0, end=5.0)


class TestImaging:
    def test_recovers_source_position(self, flare_photons):
        window = flare_photons.select_time(40.0, 160.0).select_energy(6.0, 100.0)
        image = back_projection(window, n_pixels=48, source_position=(250.0, -150.0))
        x, y = image.peak_position()
        step = image.extent_arcsec / image.n_pixels  # one pixel tolerance x2
        assert abs(x - 250.0) < 2 * step
        assert abs(y + 150.0) < 2 * step

    def test_photon_count_accounted(self, flare_photons):
        window = flare_photons.select_time(40.0, 80.0)
        image = back_projection(window, n_pixels=16)
        assert image.n_photons_used == len(window)

    def test_detector_subset(self, flare_photons):
        window = flare_photons.select_time(40.0, 60.0)
        image = back_projection(window, n_pixels=16, detectors=[1, 2, 3])
        assert image.n_photons_used == sum(
            len(window.select_detector(index)) for index in (1, 2, 3)
        )

    def test_empty_input_gives_zero_image(self):
        empty = PhotonList(np.array([]), np.array([]), np.array([]))
        image = back_projection(empty, n_pixels=8)
        assert image.n_photons_used == 0
        assert np.all(image.image == 0)

    def test_clean_sharpens_peak(self, flare_photons):
        window = flare_photons.select_time(40.0, 120.0).select_energy(6.0, 100.0)
        dirty = back_projection(window, n_pixels=32, source_position=(250.0, -150.0))
        cleaned = clean_iterations(dirty, n_iterations=24)
        assert cleaned.dynamic_range() > dirty.dynamic_range()

    def test_tiny_grid_rejected(self, flare_photons):
        with pytest.raises(ValueError):
            back_projection(flare_photons, n_pixels=2)

    def test_bad_phase_bins_rejected(self, flare_photons):
        with pytest.raises(ValueError):
            back_projection(flare_photons, n_pixels=16, n_phase_bins=0)

    def test_exact_mode_matches_dense_kernel(self, flare_photons):
        # n_phase_bins=None streams per photon with no binning: it must
        # reproduce the dense reference kernel to rounding error.
        window = flare_photons.select_time(40.0, 44.0)
        streamed = back_projection(
            window, n_pixels=24, source_position=(250.0, -150.0), n_phase_bins=None
        )
        dense = back_projection_dense(
            window, n_pixels=24, source_position=(250.0, -150.0)
        )
        assert streamed.n_photons_used == dense.n_photons_used
        np.testing.assert_allclose(streamed.image, dense.image, atol=1e-10)

    def test_binned_mode_preserves_peak_and_range(self, flare_photons):
        window = flare_photons.select_time(40.0, 160.0).select_energy(6.0, 100.0)
        binned = back_projection(
            window, n_pixels=48, source_position=(250.0, -150.0),
            n_phase_bins=DEFAULT_PHASE_BINS,
        )
        dense = back_projection_dense(
            window, n_pixels=48, source_position=(250.0, -150.0)
        )
        # Binning is second-order accurate at the source: the peak lands on
        # the same pixel and the dynamic range stays in the same regime.
        assert binned.peak_position() == dense.peak_position()
        assert binned.dynamic_range() > 0.7 * dense.dynamic_range()


class TestSpectrogram:
    def test_counts_conserved(self, flare_photons):
        result = spectrogram(flare_photons, time_bin_s=4.0, n_energy_bins=24)
        in_range = flare_photons.select_energy(3.0, 20_000.0)
        assert result.counts.sum() == pytest.approx(len(in_range), rel=0.01)

    def test_normalized_in_unit_range(self, flare_photons):
        result = spectrogram(flare_photons)
        normalized = result.normalized()
        assert 0.0 <= normalized.min() and normalized.max() == pytest.approx(1.0)

    def test_band_profile_peaks_with_flare(self, flare_photons):
        result = spectrogram(flare_photons, time_bin_s=4.0)
        profile = result.band_profile(3.0, 50.0)
        peak_bin = int(np.argmax(profile))
        peak_time = result.time_edges[peak_bin]
        assert 40.0 < peak_time < 90.0

    def test_invalid_parameters(self, flare_photons):
        with pytest.raises(ValueError):
            spectrogram(flare_photons, time_bin_s=0)
        with pytest.raises(ValueError):
            spectrogram(flare_photons, n_energy_bins=1)


class TestHistogram:
    def test_energy_histogram_conserves_counts(self, flare_photons):
        result = histogram(flare_photons, "energy", n_bins=32)
        assert result.total == len(flare_photons)

    def test_detector_histogram_has_nine_bins(self, flare_photons):
        result = histogram(flare_photons, "detector")
        assert len(result.counts) == 9
        assert result.total == len(flare_photons)

    def test_time_histogram_linear_bins(self, flare_photons):
        result = histogram(flare_photons, "time", n_bins=10)
        widths = np.diff(result.edges)
        assert np.allclose(widths, widths[0])

    def test_mode_bin_is_soft_xray(self, flare_photons):
        low, _high = histogram(flare_photons, "energy", n_bins=64).mode_bin()
        assert low < 30.0  # thermal emission dominates

    def test_empty_input(self):
        empty = PhotonList(np.array([]), np.array([]), np.array([]))
        result = histogram(empty, "energy", n_bins=8)
        assert result.total == 0

    def test_unknown_attribute_rejected(self, flare_photons):
        with pytest.raises(ValueError):
            histogram(flare_photons, "color")


class TestProducts:
    def test_pgm_round_trip(self):
        array = np.arange(12, dtype=float).reshape(3, 4)
        pixels = parse_pgm(render_pgm(array))
        assert pixels.shape == (3, 4)
        assert pixels[0, 0] == 0 and pixels[-1, -1] == 255

    def test_flat_image_renders_black(self):
        pixels = parse_pgm(render_pgm(np.full((4, 4), 3.0)))
        assert np.all(pixels == 0)

    def test_series_rendering(self):
        payload = render_series_pgm(np.array([0.0, 1.0, 2.0, 4.0]), height=16)
        pixels = parse_pgm(payload)
        assert pixels.shape == (16, 4)
        # Tallest bar is the last column.
        assert pixels[:, 3].sum() > pixels[:, 1].sum()

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            render_pgm(np.zeros(5))
        with pytest.raises(ValueError):
            render_series_pgm(np.array([]))
        with pytest.raises(ValueError):
            parse_pgm(b"JUNK")

    def test_bundle_writing(self, tmp_path):
        product = AnalysisProduct("imaging", {"n_pixels": 8}, summary={"peak": 1.0})
        product.add_image(render_pgm(np.eye(8)))
        product.log("step one")
        product.log("step two")
        paths = product.write_bundle(tmp_path, "ana42")
        names = sorted(path.name for path in paths)
        assert names == ["ana42.00.pgm", "ana42.log", "ana42.params.json"]
        params = json.loads((tmp_path / "ana42.params.json").read_text())
        assert params["algorithm"] == "imaging"
        assert (tmp_path / "ana42.log").read_text() == "step one\nstep two\n"


class TestCostModels:
    def test_server_three_times_slower(self):
        assert predict("imaging", 0.8, on_server=True) == pytest.approx(
            3 * predict("imaging", 0.8, on_server=False)
        )

    def test_paper_anchor_values(self):
        # Table 1 anchors: ~20 s/0.8 MB on the client, ~60 s on the server.
        assert predict("imaging", 0.8) == pytest.approx(20.0, rel=0.05)
        assert predict("imaging", 0.8, on_server=True) == pytest.approx(60.0, rel=0.05)
        assert predict("histogram", 0.3) == pytest.approx(2.5, rel=0.1)

    def test_superlinear_model_scales_superlinearly(self):
        assert predict("spectroscopy", 20.0) > 2 * predict("spectroscopy", 10.0)

    def test_approximation_speedup_at_least_reduction(self):
        assert approximation_speedup("spectroscopy", 10.0, 10.0) >= 10.0
        assert approximation_speedup("lightcurve", 10.0, 1.0) == pytest.approx(1.0)

    def test_invalid_inputs(self):
        with pytest.raises(KeyError):
            predict("unknown", 1.0)
        with pytest.raises(ValueError):
            CostModel(1.0, 1.0).predict(-1.0)
        with pytest.raises(ValueError):
            CostModel(1.0, 1.0).predict(1.0, speed_factor=0.0)
        with pytest.raises(ValueError):
            approximation_speedup("imaging", 1.0, 0.5)
