"""Tests for the two-part schema and the security layer."""

import pytest

from repro.metadb import Comparison, Database, Insert, IntegrityError, Select
from repro.schema import GENERIC_SCHEMAS, RHESSI_SCHEMAS, install_all, install_generic, install_rhessi
from repro.security import (
    AuthError,
    ConstraintViolation,
    GROUP_RIGHTS,
    User,
    UserManager,
    check_can_edit,
    check_can_read,
    check_no_dependencies,
    check_right,
    hash_password,
    scoped_where,
    verify_password,
    visibility_predicate,
)


class TestSchemaInstallation:
    def test_generic_part_installs_alone(self):
        """The generic part must carry no instrument knowledge (§4.1)."""
        database = Database()
        install_generic(database)
        assert len(database.table_names()) == len(GENERIC_SCHEMAS) == 11
        assert "hle" not in database.table_names()

    def test_domain_part_has_seven_tables(self):
        assert len(RHESSI_SCHEMAS) == 7

    def test_full_installation_is_idempotent(self, db):
        install_all(db)  # second call must be a no-op
        assert len(db.table_names()) == len(GENERIC_SCHEMAS) + len(RHESSI_SCHEMAS)

    def test_domain_tables_reference_users(self, db):
        """Every owned domain tuple links to admin_users for rights (§4.1)."""
        db.execute(Insert("admin_users", {
            "user_id": 1, "login": "u", "password_hash": "x",
        }))
        with pytest.raises(IntegrityError):
            db.execute(Insert("hle", {
                "hle_id": 1, "item_id": "h:1", "owner_id": 999,
                "start_time": 0.0, "end_time": 1.0,
            }))
        db.execute(Insert("hle", {
            "hle_id": 1, "item_id": "h:1", "owner_id": 1,
            "start_time": 0.0, "end_time": 1.0,
        }))

    def test_ana_requires_existing_hle(self, db):
        db.execute(Insert("admin_users", {"user_id": 1, "login": "u", "password_hash": "x"}))
        with pytest.raises(IntegrityError):
            db.execute(Insert("ana", {
                "ana_id": 1, "item_id": "a:1", "hle_id": 42, "owner_id": 1,
                "algorithm": "imaging",
            }))

    def test_hle_has_paper_scale_attribute_count(self):
        """HLE tuples carry ~25 attributes, ANA ~45 (§4.1)."""
        hle_schema = next(s for s in RHESSI_SCHEMAS if s().name == "hle")()
        ana_schema = next(s for s in RHESSI_SCHEMAS if s().name == "ana")()
        assert 22 <= len(hle_schema.column_order) <= 30
        assert 40 <= len(ana_schema.column_order) <= 50

    def test_loc_files_unique_per_archive_path(self, db):
        db.execute(Insert("loc_archives", {"archive_id": "a", "root_path": "/a"}))
        db.execute(Insert("loc_files", {
            "file_id": 1, "item_id": "i", "archive_id": "a", "rel_path": "p",
        }))
        with pytest.raises(IntegrityError):
            db.execute(Insert("loc_files", {
                "file_id": 2, "item_id": "j", "archive_id": "a", "rel_path": "p",
            }))


class TestPasswords:
    def test_hash_and_verify(self):
        stored = hash_password("secret")
        assert verify_password("secret", stored)
        assert not verify_password("wrong", stored)

    def test_salts_differ(self):
        assert hash_password("secret") != hash_password("secret")

    def test_malformed_stored_hash(self):
        assert not verify_password("x", "garbage-without-separator")


class TestUserManager:
    def test_create_and_authenticate(self, db):
        users = UserManager(db)
        created = users.create_user("ada", "pw", group="scientist")
        authenticated = users.authenticate("ada", "pw")
        assert authenticated.user_id == created.user_id
        assert authenticated.has_right("analyze")

    def test_group_rights_defaults(self, db):
        users = UserManager(db)
        guest = users.create_user("g", "pw", group="guest")
        assert guest.rights == frozenset(GROUP_RIGHTS["guest"])
        assert not guest.has_right("download")

    def test_admin_has_all_rights(self, db):
        users = UserManager(db)
        admin = users.create_user("root", "pw", group="admin")
        assert admin.is_admin
        assert admin.has_right("upload")

    def test_bad_password_and_unknown_login(self, db):
        users = UserManager(db)
        users.create_user("ada", "pw")
        with pytest.raises(AuthError):
            users.authenticate("ada", "nope")
        with pytest.raises(AuthError):
            users.authenticate("ghost", "pw")

    def test_deactivated_account_rejected(self, db):
        users = UserManager(db)
        ada = users.create_user("ada", "pw")
        users.deactivate(ada.user_id)
        with pytest.raises(AuthError):
            users.authenticate("ada", "pw")

    def test_duplicate_login_rejected(self, db):
        users = UserManager(db)
        users.create_user("ada", "pw")
        with pytest.raises(IntegrityError):
            users.create_user("ada", "other")

    def test_authentication_updates_last_login(self, db):
        users = UserManager(db)
        users.create_user("ada", "pw")
        users.authenticate("ada", "pw")
        row = db.execute(Select("admin_users", where=Comparison("login", "=", "ada")))[0]
        assert row["last_login_at"] is not None

    def test_import_user_idempotent(self, db):
        users = UserManager(db)
        first = users.ensure_import_user()
        second = users.ensure_import_user()
        assert first.user_id == second.user_id

    def test_unknown_group_and_right_rejected(self, db):
        users = UserManager(db)
        with pytest.raises(AuthError):
            users.create_user("x", "pw", group="wizards")
        with pytest.raises(AuthError):
            users.create_user("x", "pw", rights=("fly",))


def _user(user_id=1, rights=("browse", "download", "analyze", "upload"), group="scientist"):
    return User(user_id, f"user{user_id}", group, frozenset(rights))


class TestVisibility:
    def test_anonymous_sees_only_public(self):
        predicate = visibility_predicate(None)
        assert predicate.matches({"public": True, "owner_id": 5})
        assert not predicate.matches({"public": False, "owner_id": 5})

    def test_owner_sees_own_private(self):
        predicate = visibility_predicate(_user(5))
        assert predicate.matches({"public": False, "owner_id": 5})
        assert not predicate.matches({"public": False, "owner_id": 6})

    def test_admin_sees_everything(self):
        predicate = visibility_predicate(_user(1, rights=("admin",), group="admin"))
        assert predicate.matches({"public": False, "owner_id": 99})

    def test_scoped_where_combines(self):
        scoped = scoped_where(_user(5), Comparison("kind", "=", "flare"))
        assert scoped.matches({"kind": "flare", "public": True, "owner_id": 9})
        assert not scoped.matches({"kind": "grb", "public": True, "owner_id": 9})
        assert not scoped.matches({"kind": "flare", "public": False, "owner_id": 9})


class TestConstraints:
    def test_read_constraint(self):
        check_can_read(None, {"public": True})
        with pytest.raises(ConstraintViolation):
            check_can_read(None, {"public": False, "owner_id": 1})
        check_can_read(_user(1), {"public": False, "owner_id": 1})

    def test_edit_constraint(self):
        with pytest.raises(ConstraintViolation):
            check_can_edit(None, {"owner_id": 1})
        with pytest.raises(ConstraintViolation):
            check_can_edit(_user(2), {"owner_id": 1})
        check_can_edit(_user(1), {"owner_id": 1})

    def test_right_constraint(self):
        check_right(None, "browse")  # browsing is open to everyone
        with pytest.raises(AuthError):
            check_right(None, "download")
        with pytest.raises(AuthError):
            check_right(_user(1, rights=("browse",)), "analyze")
        check_right(_user(1), "analyze")

    def test_dependency_constraint(self):
        check_no_dependencies(0, "HLE 1")
        with pytest.raises(ConstraintViolation):
            check_no_dependencies(3, "HLE 1")
