"""Shared fixtures.

The expensive fixtures (telemetry, a populated repository) are session
scoped and read-only; tests that mutate state build their own instances.
"""

from __future__ import annotations

import pytest

from repro.core import Hedc
from repro.dm import DataManager
from repro.metadb import Database
from repro.rhessi import TelemetryGenerator, standard_day_plan
from repro.schema import install_all


@pytest.fixture()
def db() -> Database:
    """A fresh in-memory database with the full HEDC schema."""
    database = Database()
    install_all(database)
    return database


@pytest.fixture()
def dm(tmp_path) -> DataManager:
    """A fresh standalone DM node."""
    return DataManager.standalone(tmp_path / "dm")


@pytest.fixture(scope="session")
def photons_small():
    """A small deterministic photon list (one flare, ~1 minute)."""
    plan = standard_day_plan(duration=120.0, seed=21, n_flares=1, n_bursts=0, n_saa=0)
    return TelemetryGenerator(plan, seed=21).generate()


@pytest.fixture(scope="session")
def photons_mixed():
    """A richer stream: flares, a burst and an SAA transit (~10 min)."""
    plan = standard_day_plan(duration=600.0, seed=5, n_flares=2, n_bursts=1, n_saa=1)
    return TelemetryGenerator(plan, seed=5).generate()


@pytest.fixture(scope="session")
def populated_hedc(tmp_path_factory):
    """A loaded repository shared by read-only integration tests."""
    root = tmp_path_factory.mktemp("hedc-shared")
    hedc = Hedc.create(root)
    hedc.ingest_observation(duration_s=420.0, seed=13, unit_target_photons=150_000)
    hedc.register_user("reader", "reader-pw", group="scientist")
    return hedc
