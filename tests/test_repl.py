"""Replica groups: log shipping, failover, anti-entropy, crash recovery.

The paper closes its scaling discussion with "further scalability can be
achieved by replicating the database using standard techniques" (§7.3)
and demands a middle tier that "tolerate[s] failure and restart" (§5.1).
:mod:`repro.repl` supplies those standard techniques — these tests hold
it to the self-healing contract: reads survive any single copy's death,
a crashed follower rejoins by log replay (not a full re-clone), and
anti-entropy provably restores byte-identity.
"""

import random
import threading

import pytest

from repro.metadb import (
    Column,
    ColumnType,
    Comparison,
    Database,
    Delete,
    Insert,
    Select,
    TableSchema,
    Update,
)
from repro.repl import (
    LogShipper,
    ReplicaGroup,
    ReplicaState,
    ReplicationLog,
    range_checksums,
    rowid_ranges,
    verify_replica,
)
from repro.resil import BreakerState, FaultInjector, use_injector


def _schema(name="events"):
    return TableSchema(name, [
        Column("id", ColumnType.INTEGER, nullable=False),
        Column("label", ColumnType.TEXT),
        Column("value", ColumnType.REAL),
    ], primary_key="id")


def _fill(group, n, table="events", start=0):
    for index in range(start, start + n):
        group.execute(Insert(table, {
            "id": index, "label": f"row{index}", "value": float(index),
        }))


class TestReplicationLog:
    def test_lsns_are_dense_and_one_based(self):
        log = ReplicationLog()
        assert log.append(1, [{"op": "insert"}]) == 1
        assert log.append(2, [{"op": "delete"}]) == 2
        assert log.head_lsn == 2
        assert [e.lsn for e in log.entries_from(0)] == [1, 2]

    def test_entries_from_is_exclusive(self):
        log = ReplicationLog()
        for tx in range(5):
            log.append(tx, [{"tx": tx}])
        assert [e.lsn for e in log.entries_from(3)] == [4, 5]
        assert log.entries_from(5) == []

    def test_truncated_offset_raises_lookup_error(self):
        log = ReplicationLog()
        for tx in range(10):
            log.append(tx, [{}])
        log.truncate_to(6)
        assert log.base_lsn == 6
        assert [e.lsn for e in log.entries_from(6)] == [7, 8, 9, 10]
        with pytest.raises(LookupError):
            log.entries_from(5)

    def test_retention_cap_advances_base(self):
        log = ReplicationLog(retain=4)
        for tx in range(10):
            log.append(tx, [{}])
        assert log.base_lsn == 6 and len(log) == 4


class TestWriteReplication:
    def test_writes_and_ddl_reach_every_follower(self):
        group = ReplicaGroup(name="g", n_replicas=2)
        group.create_table(_schema())
        _fill(group, 12)
        group.execute(Update("events", {"label": "touched"},
                             where=Comparison("id", "<", 3)))
        group.execute(Delete("events", where=Comparison("id", ">=", 10)))
        for replica in group.replicas:
            assert replica.db.has_table("events")
            assert len(replica.db.table("events")) == 10
            assert replica.state is ReplicaState.IN_SYNC
        assert group.verify() == {"g-r1": {}, "g-r2": {}}

    def test_drop_table_replicates(self):
        group = ReplicaGroup(name="g", n_replicas=1)
        group.create_table(_schema())
        group.drop_table("events")
        assert not group.replicas[0].db.has_table("events")

    def test_explicit_transaction_replicates_on_commit_only(self):
        group = ReplicaGroup(name="g", n_replicas=1)
        group.create_table(_schema())
        follower = group.replicas[0].db
        tx = group.begin()
        group.execute(Insert("events", {"id": 1, "label": "a", "value": 1.0}),
                      tx=tx)
        assert len(follower.table("events")) == 0  # not yet committed
        group.commit(tx)
        assert len(follower.table("events")) == 1

    def test_rolled_back_transaction_ships_nothing(self):
        group = ReplicaGroup(name="g", n_replicas=1)
        group.create_table(_schema())
        head_before = group.log.head_lsn
        tx = group.begin()
        group.execute(Insert("events", {"id": 1, "label": "a", "value": 1.0}),
                      tx=tx)
        group.rollback(tx)
        assert group.log.head_lsn == head_before
        assert len(group.replicas[0].db.table("events")) == 0

    def test_bootstrap_clones_a_populated_primary(self):
        primary = Database(name="p")
        primary.create_table(_schema())
        for index in range(8):
            primary.execute(Insert("events", {
                "id": index, "label": f"r{index}", "value": 0.0,
            }))
        group = ReplicaGroup(primary=primary, n_replicas=1)
        assert len(group.replicas[0].db.table("events")) == 8
        assert group.full_clones == 1
        assert group.verify() == {"p-r1": {}}


class TestReadRouting:
    def test_reads_rotate_across_all_copies(self):
        group = ReplicaGroup(name="g", n_replicas=2)
        group.create_table(_schema())
        _fill(group, 6)
        for _ in range(9):
            assert len(group.execute(Select("events"))) == 6
        assert sorted(group.reads_by_copy) == ["g", "g-r1", "g-r2"]
        assert all(count == 3 for count in group.reads_by_copy.values())

    def test_bounded_staleness_skips_lagging_followers(self):
        group = ReplicaGroup(name="g", n_replicas=1, auto_ship=False, max_lag=2)
        group.create_table(_schema())
        group.ship()  # settle the DDL entry
        _fill(group, 2)  # follower now lags by 2 == max_lag: still eligible
        reads_before = group.replicas[0].reads
        for _ in range(4):
            group.execute(Select("events"))
        assert group.replicas[0].reads > reads_before
        skips = group.obs.counter("repl.stale_skips", db="g", replica="g-r1")
        _fill(group, 1, start=2)  # lag 3 > max_lag: now too stale
        for _ in range(4):
            rows = group.execute(Select("events"))
            assert len(rows) == 3  # primary serves the freshest data
        assert skips.value >= 4
        assert group.reads_by_copy["g"] >= 4
        group.ship()  # caught up: follower is eligible again
        assert group.replicas[0].lag(group.log.head_lsn) == 0
        served = group.replicas[0].reads
        for _ in range(4):
            group.execute(Select("events"))
        assert group.replicas[0].reads > served

    def test_max_lag_zero_defaults_to_read_your_writes(self):
        group = ReplicaGroup(name="g", n_replicas=1)
        group.create_table(_schema())
        _fill(group, 5)
        # Synchronous auto-ship: the follower never lags, every copy
        # serves the committed state.
        for _ in range(6):
            assert len(group.execute(Select("events"))) == 5


class TestFailover:
    def test_reads_survive_a_dying_replica(self):
        group = ReplicaGroup(name="g", n_replicas=2, breaker_cooldown_s=60.0)
        group.create_table(_schema())
        _fill(group, 4)
        injector = FaultInjector(seed=7)
        injector.inject("repl.replica.g-r1.crash", rate=1.0)
        with use_injector(injector):
            for _ in range(24):
                assert len(group.execute(Select("events"))) == 4
        dead = group._replica("g-r1")
        assert dead.state is ReplicaState.DEAD
        assert group.breakers["g-r1"].state is BreakerState.OPEN
        assert group.failovers > 0
        # The healthy copies carried the load.
        assert group.reads_by_copy["g"] + group.reads_by_copy["g-r2"] == 24

    def test_partitioned_copy_revives_after_cooldown(self):
        import time

        group = ReplicaGroup(name="g", n_replicas=1, breaker_cooldown_s=0.1)
        group.create_table(_schema())
        _fill(group, 3)
        injector = FaultInjector(seed=7)
        injector.inject("repl.replica.g-r1.crash", rate=1.0)
        with use_injector(injector):
            for _ in range(16):
                group.execute(Select("events"))
        assert group._replica("g-r1").state is ReplicaState.DEAD
        # Partition healed + cooldown elapsed: the half-open probe read
        # succeeds and the copy revives without operator action.
        time.sleep(0.15)
        for _ in range(6):
            group.execute(Select("events"))
        assert group._replica("g-r1").state is ReplicaState.IN_SYNC

    def test_all_copies_dead_raises_the_last_transient(self):
        from repro.resil import InjectedFault

        group = ReplicaGroup(name="g", n_replicas=1, breaker_cooldown_s=60.0)
        group.create_table(_schema())
        injector = FaultInjector(seed=7)
        injector.inject("repl.replica.g.crash", rate=1.0)
        injector.inject("repl.replica.g-r1.crash", rate=1.0)
        with use_injector(injector):
            with pytest.raises(InjectedFault):
                group.execute(Select("events"))


class TestShippingFaults:
    def test_lost_ack_never_duplicates_rows(self):
        group = ReplicaGroup(name="g", n_replicas=1)
        group.create_table(_schema())
        injector = FaultInjector(seed=7)
        # The follower applies the batch, then the ack is lost exactly once.
        injector.inject("repl.ack", rate=1.0, times=1)
        with use_injector(injector):
            _fill(group, 1)
        follower = group.replicas[0]
        assert follower.ship_failures == 1
        assert follower.state is ReplicaState.LAGGING
        # Re-ship: the duplicate batch is deduplicated by LSN.
        group.ship()
        assert follower.state is ReplicaState.IN_SYNC
        assert len(follower.db.table("events")) == 1
        assert group.verify() == {"g-r1": {}}

    def test_lost_batch_is_reshipped(self):
        group = ReplicaGroup(name="g", n_replicas=1)
        group.create_table(_schema())
        injector = FaultInjector(seed=7)
        injector.inject("repl.ship", rate=1.0, times=1)
        with use_injector(injector):
            _fill(group, 1)
        assert group.replicas[0].lag(group.log.head_lsn) > 0
        group.ship()
        assert group.verify() == {"g-r1": {}}

    def test_writer_never_sees_ship_failures(self):
        """Log shipping is asynchronous to the caller: a broken follower
        degrades (lagging/dead) but the write itself commits."""
        group = ReplicaGroup(name="g", n_replicas=1, breaker_cooldown_s=60.0)
        group.create_table(_schema())
        injector = FaultInjector(seed=7)
        injector.inject("repl.ship", rate=1.0)
        with use_injector(injector):
            _fill(group, 8)
        assert len(group.primary.table("events")) == 8
        assert group._replica("g-r1").state in (ReplicaState.LAGGING,
                                                ReplicaState.DEAD)


class TestCrashRecovery:
    def test_inmemory_crash_falls_back_to_full_resync(self):
        group = ReplicaGroup(name="g", n_replicas=1)
        group.create_table(_schema())
        _fill(group, 10)
        group.kill_replica("g-r1")
        _fill(group, 5, start=10)
        result = group.rejoin_replica("g-r1")
        # An in-memory follower loses everything in a crash; with no WAL
        # to recover from, only anti-entropy can rebuild it.
        assert result["mode"] == "full_resync"
        assert result["rows_cloned"] == 15
        assert group.verify() == {"g-r1": {}}

    def test_persistent_crash_rejoins_via_log_replay(self, tmp_path):
        group = ReplicaGroup(name="g", path=tmp_path / "g", n_replicas=1)
        group.create_table(_schema())
        _fill(group, 10)
        group.kill_replica("g-r1")
        clones_before = group.full_clones
        _fill(group, 5, start=10)
        result = group.rejoin_replica("g-r1")
        assert result["mode"] == "log_replay"
        assert result["replayed_records"] == 5
        assert group.full_clones == clones_before
        assert group.rejoins == 1
        assert len(group.replicas[0].db.table("events")) == 15
        assert group.verify() == {"g-r1": {}}

    def test_rejoin_recovers_from_a_torn_wal_tail(self, tmp_path):
        group = ReplicaGroup(name="g", path=tmp_path / "g", n_replicas=1)
        group.create_table(_schema())
        _fill(group, 6)
        group.kill_replica("g-r1")
        # The crash left a half-written record at the follower's WAL tail.
        journal = group.replicas[0].path / "journal.jsonl"
        with open(journal, "ab") as handle:
            handle.write(b'{"tx": 999, "records": [{"op": "ins')
        _fill(group, 3, start=6)
        torn = group.obs.counter("metadb.wal.torn_tails")
        result = group.rejoin_replica("g-r1")
        assert torn.value >= 1
        assert result["mode"] == "log_replay"
        assert group.verify() == {"g-r1": {}}
        assert len(group.replicas[0].db.table("events")) == 9

    def test_replica_behind_retained_log_window_full_resyncs(self):
        group = ReplicaGroup(name="g", n_replicas=1)
        group.log = ReplicationLog(retain=4)
        group.shipper = LogShipper(group.log, obs=group.obs)
        group.create_table(_schema())
        group.kill_replica("g-r1")
        _fill(group, 10)  # retention cap evicts the killed copy's offset
        result = group.rejoin_replica("g-r1")
        assert result["mode"] == "full_resync"
        assert group.full_clones >= 1
        assert group.verify() == {"g-r1": {}}

    def test_commits_during_rejoin_are_drained(self, tmp_path):
        """Auto-ship skips a rejoining copy; the rejoin's final drain must
        still leave it in sync with commits that raced the recovery."""
        group = ReplicaGroup(name="g", path=tmp_path / "g", n_replicas=1)
        group.create_table(_schema())
        _fill(group, 4)
        group.kill_replica("g-r1")
        _fill(group, 4, start=4)
        group.rejoin_replica("g-r1")
        assert group.replicas[0].state is ReplicaState.IN_SYNC
        assert len(group.replicas[0].db.table("events")) == 8


class TestAntiEntropy:
    def test_rowid_ranges_cover_everything_open_ended(self):
        db = Database(name="x")
        db.create_table(_schema())
        for index in range(20):
            db.execute(Insert("events", {"id": index, "label": "", "value": 0.0}))
        ranges = rowid_ranges(db.table("events"), n_ranges=4)
        assert ranges[0][0] == 1
        assert ranges[-1][1] is None
        for (_, hi), (lo, _) in zip(ranges, ranges[1:]):
            assert hi == lo

    def test_verify_detects_silent_divergence(self):
        group = ReplicaGroup(name="g", n_replicas=1)
        group.create_table(_schema())
        _fill(group, 16)
        follower = group.replicas[0].db
        # Bit rot / operator error: a direct write bypassing the log.
        follower.table("events").update(3, {"label": "corrupted"})
        divergent = group.verify()["g-r1"]
        assert "events" in divergent and len(divergent["events"]) == 1

    def test_repair_recloned_only_divergent_ranges(self):
        group = ReplicaGroup(name="g", n_replicas=1, n_ranges=8)
        group.create_table(_schema())
        _fill(group, 64)
        follower = group.replicas[0].db
        follower.table("events").delete(5)
        follower.table("events").update(40, {"value": -1.0})
        report = group.repair()["g-r1"]
        assert report["ranges_repaired"] == 2
        assert report["rows_cloned"] < 64  # not a full re-clone
        assert group.verify() == {"g-r1": {}}
        assert group.repairs == 1
        assert group.replicas[0].last_repair["ranges_repaired"] == 2

    def test_repair_handles_missing_and_extra_tables(self):
        group = ReplicaGroup(name="g", n_replicas=1)
        group.create_table(_schema())
        _fill(group, 4)
        follower = group.replicas[0].db
        follower.drop_table("events")
        follower.create_table(_schema("stray"))
        group.repair()
        assert group.verify() == {"g-r1": {}}
        assert not group.replicas[0].db.has_table("stray")
        assert len(group.replicas[0].db.table("events")) == 4

    def test_reads_keep_flowing_during_repair(self):
        group = ReplicaGroup(name="g", n_replicas=1)
        group.create_table(_schema())
        _fill(group, 32)
        group.replicas[0].db.table("events").delete(7)
        stop = threading.Event()
        failures = []

        def reader():
            while not stop.is_set():
                try:
                    group.execute(Select("events"))
                except Exception as exc:  # pragma: no cover
                    failures.append(exc)

        thread = threading.Thread(target=reader)
        thread.start()
        try:
            for _ in range(5):
                group.repair()
        finally:
            stop.set()
            thread.join()
        assert not failures
        assert group.verify() == {"g-r1": {}}


class TestDifferentialRandomized:
    def test_crashed_replica_rejoins_byte_identical_under_concurrent_writes(
            self, tmp_path):
        """The acceptance bar: a replica crashed mid-stream, rejoined via
        WAL-recovery + log replay while writers keep committing, ends up
        byte-identical to the primary — proven by per-table range
        checksums, not row counts."""
        group = ReplicaGroup(name="diff", path=tmp_path / "diff", n_replicas=1)
        group.create_table(_schema())
        _fill(group, 30)
        rng = random.Random(2003)
        errors = []
        crashed = threading.Event()
        rejoined = threading.Event()

        def writer(worker):
            try:
                local = random.Random(worker)
                for index in range(60):
                    op = local.random()
                    rowid = local.randrange(1, 31)
                    if op < 0.5:
                        group.execute(Insert("events", {
                            "id": 1000 * (worker + 1) + index,
                            "label": f"w{worker}.{index}",
                            "value": local.random(),
                        }))
                    elif op < 0.8:
                        group.execute(Update(
                            "events", {"value": local.random()},
                            where=Comparison("id", "=", rowid)))
                    else:
                        group.execute(Delete(
                            "events", where=Comparison("id", "=", rowid)))
                    if index == 20 and worker == 0:
                        group.kill_replica("diff-r1")
                        crashed.set()
                    if index == 40 and worker == 0:
                        result = group.rejoin_replica("diff-r1")
                        assert result["mode"] == "log_replay", result
                        rejoined.set()
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=writer, args=(w,)) for w in range(3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert crashed.is_set() and rejoined.is_set()
        # Settle whatever raced the final drain, then prove byte-identity.
        group.ship()
        assert group.verify() == {"diff-r1": {}}
        follower = group.replicas[0].db
        boundaries = rowid_ranges(group.primary.table("events"), 8)
        assert range_checksums(group.primary, "events", boundaries) == \
            range_checksums(follower, "events", boundaries)
        assert rng is not None  # seed documented above


class TestShardedReplication:
    def _sharded(self, tmp_path=None, **kwargs):
        from repro.schema import install_all
        from repro.shard import ShardedDatabase

        sharded = ShardedDatabase(
            boundaries=(100.0,), name="cat",
            path=tmp_path, replicas_per_shard=2, **kwargs,
        )
        install_all(sharded)
        sharded.execute(Insert("admin_users", {
            "user_id": 1, "login": "op", "password_hash": "x",
        }))
        for index, start in enumerate([10.0, 50.0, 110.0, 150.0], start=1):
            sharded.execute(Insert("hle", {
                "hle_id": index, "item_id": f"hle:{index}", "owner_id": 1,
                "start_time": start, "end_time": start + 1.0,
            }))
        return sharded

    def test_killed_replica_never_yields_partial_result(self):
        from repro.shard import PartialResult

        sharded = self._sharded()
        groups = list(sharded._topology.dbs.values())
        for group in groups:
            assert isinstance(group, ReplicaGroup)
            for replica in list(group.replicas):
                group.kill_replica(replica.name)
                rows = sharded.execute(Select("hle"))
                assert not isinstance(rows, PartialResult)
                assert {row["hle_id"] for row in rows} == {1, 2, 3, 4}
                group.rejoin_replica(replica.name)

    def test_crash_fault_on_any_replica_never_yields_partial_result(self):
        from repro.shard import PartialResult

        sharded = self._sharded(breaker_cooldown_s=60.0)
        names = [replica.name
                 for group in sharded._topology.dbs.values()
                 for replica in group.replicas]
        assert len(names) == 2
        for name in names:
            injector = FaultInjector(seed=11)
            injector.inject(f"repl.replica.{name}.crash", rate=1.0)
            with use_injector(injector):
                for _ in range(8):
                    rows = sharded.execute(Select("hle"))
                    assert not isinstance(rows, PartialResult)
                    assert len(rows) == 4

    def test_replicas_per_shard_persists_across_reopen(self, tmp_path):
        sharded = self._sharded(tmp_path=tmp_path / "cat")
        sharded.checkpoint()
        from repro.shard import ShardedDatabase

        reopened = ShardedDatabase(path=tmp_path / "cat", name="cat")
        assert reopened.replicas_per_shard == 2
        groups = list(reopened._topology.dbs.values())
        assert all(isinstance(group, ReplicaGroup) for group in groups)
        assert len(reopened.execute(Select("hle"))) == 4

    def test_shard_report_includes_replica_topology(self):
        sharded = self._sharded()
        report = sharded.shard_report()
        assert report["replicas_per_shard"] == 2
        for entry in report["shards"]:
            assert entry["replicas"]["replicas"][0]["state"] == "in_sync"
        repl = sharded.repl_report()
        assert repl["replicas_per_shard"] == 2
        assert set(repl["per_shard"]) == {0, 1}

    def test_split_resyncs_followers_of_new_shards(self):
        from repro.shard import split_shard

        sharded = self._sharded()
        low_id, high_id = split_shard(sharded, 0, 50.0)
        for shard_id in (low_id, high_id):
            group = sharded._topology.dbs[shard_id]
            assert group.verify() == {
                replica.name: {} for replica in group.replicas
            }
        assert len(sharded.execute(Select("hle"))) == 4


class TestHedcIntegration:
    def test_replicated_hedc_serves_telemetry_and_debug(self, tmp_path):
        from repro.core import Hedc
        from repro.web import HttpRequest

        hedc = Hedc.create(tmp_path / "hedc", replicas_per_shard=2)
        hedc.register_user("alice", "pw")
        report = hedc.telemetry_report()
        assert report["replication"] is not None
        assert len(report["replication"]["replicas"]) == 1
        assert report["replication"]["replicas"][0]["state"] == "in_sync"

        import json as jsonlib

        metrics = hedc.web.handle(
            HttpRequest.get("/hedc/metrics?format=json"))
        assert metrics.status == 200
        body = jsonlib.loads(metrics.body.decode("utf-8"))
        assert body["replication"]["primary"] == "hedc"

        debug = hedc.web.handle(HttpRequest.get("/hedc/debug"))
        assert debug.status == 200
        assert "replication (head_lsn=" in debug.text
        assert "replica hedc-r1: in_sync" in debug.text


class TestEvalmodelReplicaMath:
    def test_default_efficiency_reproduces_legacy_projection(self):
        from repro.evalmodel import project_scaling

        legacy = project_scaling(16, replicas_per_shard=1)
        replicated = project_scaling(16, replicas_per_shard=4)
        assert replicated.capacity_rps == pytest.approx(4 * legacy.capacity_rps)
        assert replicated.effective_copies == 4.0

    def test_measured_losses_discount_follower_capacity(self):
        from repro.evalmodel import project_scaling, replica_efficiency

        efficiency = replica_efficiency(
            stale_skip_fraction=0.1, failover_blip_s=2.0, mtbf_s=100.0,
            ship_overhead_fraction=0.05,
        )
        assert 0.0 < efficiency < 1.0
        ideal = project_scaling(16, replicas_per_shard=4)
        lossy = project_scaling(16, replicas_per_shard=4,
                                replica_read_efficiency=efficiency)
        assert lossy.capacity_rps < ideal.capacity_rps
        # The primary always counts in full.
        floor = project_scaling(16, replicas_per_shard=1)
        assert lossy.capacity_rps > floor.capacity_rps

    def test_efficiency_bounds_are_validated(self):
        from repro.evalmodel import project_scaling, replica_efficiency

        with pytest.raises(ValueError):
            replica_efficiency(stale_skip_fraction=1.5)
        with pytest.raises(ValueError):
            project_scaling(4, replica_read_efficiency=-0.1)


class TestReplicatedDatabaseOpenBreakerSkip:
    def test_open_breaker_copies_are_filtered_before_any_attempt(self):
        """Satellite: the eager ReplicatedDatabase must not burn a
        failover hop per read on a copy whose breaker is already open —
        proven by the obs counters: ``read_attempts`` for the dead copy
        stays flat while ``skipped_open`` climbs."""
        from repro.metadb import ReplicatedDatabase
        from repro.obs import Observability

        obs = Observability(name="t")
        primary = Database(name="p", obs=obs)
        primary.create_table(_schema())
        replicated = ReplicatedDatabase(primary, obs=obs,
                                        breaker_cooldown_s=60.0)
        replicated.add_replica()
        injector = FaultInjector(seed=7)
        injector.inject("metadb.replica.p-r1", rate=1.0)
        with use_injector(injector):
            for _ in range(30):
                replicated.execute(Select("events"))
                breaker = replicated.breakers.get("p-r1")
                if breaker is not None and breaker.state is BreakerState.OPEN:
                    break
            assert replicated.breakers["p-r1"].state is BreakerState.OPEN
            attempts = obs.counter("metadb.replication.read_attempts",
                                   db="p", copy="p-r1")
            skipped = obs.counter("metadb.replication.skipped_open",
                                  db="p", copy="p-r1")
            attempts_before = attempts.value
            skipped_before = skipped.value
            for _ in range(10):
                assert replicated.execute(Select("events")) == []
            assert attempts.value == attempts_before
            assert skipped.value == skipped_before + 10
        # Every one of those reads was served by the primary directly.
        assert replicated.reads_by_copy["p"] >= 10


class TestVerifyReplicaStandalone:
    def test_verify_replica_flags_missing_tables_both_ways(self):
        left = Database(name="l")
        right = Database(name="r")
        left.create_table(_schema("only_left"))
        right.create_table(_schema("only_right"))
        divergent = verify_replica(left, right)
        assert divergent == {"only_left": [(1, None)],
                             "only_right": [(1, None)]}
