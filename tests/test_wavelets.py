"""Tests for wavelet transforms, progressive codec and views."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.wavelets import (
    RangePartitionedView,
    SUPPORTED_FILTERS,
    decode,
    encode,
    forward,
    forward2d,
    inverse,
    inverse2d,
    reconstruction_error,
)


def _signal(n: int, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return np.cumsum(rng.normal(size=n)) + 10.0


class TestTransform:
    @pytest.mark.parametrize("filter_name", SUPPORTED_FILTERS)
    @pytest.mark.parametrize("length", [2, 3, 7, 16, 100, 1023, 4096])
    def test_perfect_reconstruction(self, filter_name, length):
        signal = _signal(length)
        pyramid = forward(signal, filter_name=filter_name)
        assert np.allclose(inverse(pyramid), signal, atol=1e-8)

    def test_levels_limited_by_length(self):
        pyramid = forward(_signal(16), levels=99)
        assert pyramid.levels <= 4

    def test_progressive_reconstruction_has_full_length(self):
        signal = _signal(256)
        pyramid = forward(signal)
        for used in range(pyramid.levels + 1):
            approx = inverse(pyramid, levels_used=used)
            assert len(approx) == len(signal)

    def test_more_levels_monotonically_reduce_error(self):
        signal = _signal(1024)
        pyramid = forward(signal)
        errors = [
            reconstruction_error(signal, inverse(pyramid, levels_used=used))
            for used in range(pyramid.levels + 1)
        ]
        assert errors[-1] < 1e-8
        for coarse, fine in zip(errors, errors[1:]):
            assert fine <= coarse + 1e-12

    def test_coefficient_count_grows_with_levels(self):
        pyramid = forward(_signal(512))
        counts = [pyramid.coefficient_count(used) for used in range(pyramid.levels + 1)]
        assert counts == sorted(counts)
        assert counts[-1] >= 512

    def test_empty_and_2d_signals_rejected(self):
        with pytest.raises(ValueError):
            forward(np.array([]))
        with pytest.raises(ValueError):
            forward(np.zeros((3, 3)))
        with pytest.raises(ValueError):
            forward(_signal(8), filter_name="db4")

    def test_constant_signal_has_zero_details(self):
        pyramid = forward(np.full(64, 7.0), filter_name="haar")
        for detail in pyramid.details:
            assert np.allclose(detail, 0.0)

    @given(st.lists(st.floats(min_value=-1e4, max_value=1e4, allow_nan=False),
                    min_size=2, max_size=300))
    @settings(max_examples=60, deadline=None)
    def test_reconstruction_property(self, values):
        signal = np.array(values)
        for filter_name in SUPPORTED_FILTERS:
            assert np.allclose(
                inverse(forward(signal, filter_name=filter_name)), signal,
                atol=1e-6, rtol=1e-9,
            )


class Test2d:
    @pytest.mark.parametrize("shape", [(8, 8), (15, 9), (33, 47), (2, 2)])
    def test_2d_round_trip(self, shape):
        rng = np.random.default_rng(1)
        image = rng.normal(size=shape).cumsum(axis=0).cumsum(axis=1)
        decomposition = forward2d(image, levels=3)
        assert np.allclose(inverse2d(decomposition), image, atol=1e-6)

    def test_2d_approximation_shape_preserved(self):
        image = np.random.default_rng(2).normal(size=(20, 30))
        decomposition = forward2d(image, levels=2)
        smooth = inverse2d(decomposition, levels_used=0)
        assert smooth.shape == image.shape

    def test_2d_rejects_1d(self):
        with pytest.raises(ValueError):
            forward2d(np.zeros(8))


class TestCodec:
    def test_full_decode_matches_within_quantization(self):
        signal = _signal(800)
        stream = encode(signal, quantizer_step=0.01)
        assert reconstruction_error(signal, decode(stream.payload)) < 1e-3

    def test_prefix_decodes_to_approximation(self):
        signal = _signal(2048)
        stream = encode(signal, quantizer_step=0.01)
        coarse = decode(stream.prefix(0))
        finer = decode(stream.prefix(3))
        assert len(coarse) == len(signal)
        assert reconstruction_error(signal, finer) <= reconstruction_error(signal, coarse)

    def test_prefix_is_much_smaller(self):
        stream = encode(_signal(4096), quantizer_step=0.01)
        assert len(stream.prefix(1)) < stream.total_bytes / 4

    def test_every_prefix_boundary_is_decodable(self):
        signal = _signal(512)
        stream = encode(signal, quantizer_step=0.1)
        for levels in range(len(stream.section_offsets)):
            decoded = decode(stream.prefix(levels))
            assert len(decoded) == len(signal)

    def test_coarser_quantizer_shrinks_stream(self):
        signal = _signal(1024)
        fine = encode(signal, quantizer_step=0.01)
        coarse = encode(signal, quantizer_step=1.0)
        assert coarse.total_bytes < fine.total_bytes

    def test_bad_magic_rejected(self):
        with pytest.raises(ValueError):
            decode(b"NOPE" + b"\x00" * 64)

    def test_invalid_quantizer_rejected(self):
        with pytest.raises(ValueError):
            encode(_signal(8), quantizer_step=0.0)

    @given(st.lists(st.floats(min_value=-1e3, max_value=1e3, allow_nan=False),
                    min_size=4, max_size=200))
    @settings(max_examples=40, deadline=None)
    def test_codec_error_bounded_by_quantizer(self, values):
        signal = np.array(values)
        stream = encode(signal, quantizer_step=0.5)
        decoded = decode(stream.payload)
        # Error per sample bounded by ~quantizer * sqrt(levels) envelope.
        assert np.max(np.abs(decoded - signal)) < 0.5 * 12


class TestRangePartitionedView:
    def test_query_returns_points_in_range(self):
        view = RangePartitionedView(_signal(1000), domain_start=0.0, domain_step=2.0,
                                    partition_length=128)
        points, values, _bytes = view.query(100.0, 300.0)
        assert np.all((points >= 100.0) & (points < 300.0))
        assert len(points) == 100  # 200 domain units / step 2

    def test_query_accuracy_full_detail(self):
        signal = _signal(1000)
        view = RangePartitionedView(signal, 0.0, 1.0, partition_length=256,
                                    quantizer_step=0.01)
        points, values, _bytes = view.query(0.0, 1000.0)
        assert reconstruction_error(signal, values) < 1e-3

    def test_lod_query_reads_fewer_bytes(self):
        view = RangePartitionedView(_signal(4096), 0.0, 1.0, partition_length=512)
        _p, _v, full_bytes = view.query(0.0, 4096.0)
        _p, _v, lod_bytes = view.query(0.0, 4096.0, detail_levels=1)
        assert lod_bytes < full_bytes / 3

    def test_partition_pruning(self):
        view = RangePartitionedView(_signal(4096), 0.0, 1.0, partition_length=512)
        _p, _v, narrow_bytes = view.query(0.0, 100.0)
        _p, _v, wide_bytes = view.query(0.0, 4096.0)
        assert narrow_bytes < wide_bytes / 4

    def test_out_of_range_query_is_empty(self):
        view = RangePartitionedView(_signal(100), 0.0, 1.0, partition_length=64)
        points, values, nbytes = view.query(5000.0, 6000.0)
        assert len(points) == 0 and nbytes == 0

    def test_empty_range_rejected(self):
        view = RangePartitionedView(_signal(100), 0.0, 1.0, partition_length=64)
        with pytest.raises(ValueError):
            view.query(10.0, 10.0)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            RangePartitionedView(_signal(10), 0.0, 0.0)
        with pytest.raises(ValueError):
            RangePartitionedView(_signal(10), 0.0, 1.0, partition_length=2)
        with pytest.raises(ValueError):
            RangePartitionedView(np.zeros((2, 2)), 0.0, 1.0)
