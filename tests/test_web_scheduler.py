"""The concurrent serving tier: executors, admission control, batched
page fetch, Retry-After-honoring clients.

Functional tests drive real :class:`~repro.web.WebServer` instances
through :mod:`repro.web.loadgen` stacks at zero wire latency (fast), or
through deterministic gate-blocked servlets where ordering matters.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.obs import Observability
from repro.web import (
    CLASS_ANALYSIS,
    CLASS_BROWSE,
    CLASS_BULK,
    AdmissionController,
    HttpRequest,
    HttpResponse,
    ScheduledRequest,
    ThinClient,
    browse_mix,
    build_serving_stack,
    classify_route,
    mixed_class_mix,
    run_closed_loop,
    run_open_loop,
)
from repro.web.scheduler import DEFAULT_ROUTE_CLASSES


@pytest.fixture()
def stack(tmp_path):
    """A small zero-latency deployment on the sync executor."""
    built = build_serving_stack(tmp_path, n_hles=8, rtt_s=0.0)
    yield built
    built.shutdown()


@pytest.fixture()
def pool_stack(tmp_path):
    """The same deployment on an 8-worker pool."""
    built = build_serving_stack(tmp_path, n_hles=8, rtt_s=0.0,
                                scheduler="pool", n_workers=8)
    yield built
    built.shutdown()


def _task(route: str = "/hedc/hle", cls: str = CLASS_BROWSE,
          **kwargs) -> ScheduledRequest:
    return ScheduledRequest(HttpRequest.get(route, {}, "127.0.0.1"),
                            route, request_class=cls, **kwargs)


class TestClassification:
    def test_default_route_classes_cover_every_route(self):
        assert classify_route("/hedc/analyze") == CLASS_ANALYSIS
        assert classify_route("/hedc/hle") == CLASS_BROWSE
        assert classify_route("/static") == CLASS_BULK
        assert classify_route("/nowhere") == CLASS_BROWSE

    def test_overrides_win(self):
        assert classify_route("/hedc/hle",
                              {"/hedc/hle": CLASS_BULK}) == CLASS_BULK

    def test_operator_telemetry_rides_the_analysis_class(self):
        # Losing /hedc/metrics *during* an overload would blind the
        # operator exactly when §7's moving target moves.
        assert DEFAULT_ROUTE_CLASSES["/hedc/metrics"] == CLASS_ANALYSIS
        assert DEFAULT_ROUTE_CLASSES["/hedc/debug"] == CLASS_ANALYSIS


class TestScheduledRequest:
    def test_resolution_is_write_once(self):
        task = _task()
        assert task.resolve(HttpResponse.error(503, "a")) is True
        assert task.resolve(HttpResponse.error(200, "b")) is False
        assert task.response.status == 503
        assert task.resolved_at is not None

    def test_on_resolve_fires_exactly_once(self):
        calls = []
        task = _task(on_resolve=calls.append)
        task.resolve(HttpResponse.error(503, "a"))
        task.resolve(HttpResponse.error(200, "b"))
        assert calls == [task]

    def test_result_times_out_to_none(self):
        assert _task().result(timeout=0.01) is None


class TestAdmissionController:
    def test_full_queue_sheds_arrival_with_retry_after(self):
        admission = AdmissionController(max_queue_depth=2, obs=Observability())
        assert admission.submit(_task()) is True
        assert admission.submit(_task()) is True
        shed = _task()
        assert admission.submit(shed) is False
        assert shed.response.status == 503
        assert int(shed.response.headers["Retry-After"]) >= 1
        assert admission.depth() == 2

    def test_full_queue_evicts_newer_less_important_work(self):
        admission = AdmissionController(max_queue_depth=2, obs=Observability())
        browse_old, browse_new = _task(), _task()
        admission.submit(browse_old)
        admission.submit(browse_new)
        analysis = _task("/hedc/search", CLASS_ANALYSIS)
        assert admission.submit(analysis) is True
        # The *newest* browse was shed to make room; the older one keeps
        # its place (it has waited longest).
        assert browse_new.response.status == 503
        assert browse_old.response is None
        # Drain order is strict priority: analysis first.
        assert admission.take(0.0) is analysis
        assert admission.take(0.0) is browse_old

    def test_analysis_is_never_evicted_for_analysis(self):
        admission = AdmissionController(max_queue_depth=1, obs=Observability())
        first = _task("/hedc/search", CLASS_ANALYSIS)
        admission.submit(first)
        second = _task("/hedc/search", CLASS_ANALYSIS)
        # Equal priority: no eviction, the arrival itself is shed.
        assert admission.submit(second) is False
        assert first.response is None

    def test_priorities_off_degrades_to_plain_bounded_fifo(self):
        admission = AdmissionController(max_queue_depth=1, priorities=False,
                                        obs=Observability())
        browse = _task()
        admission.submit(browse)
        analysis = _task("/hedc/search", CLASS_ANALYSIS)
        assert admission.submit(analysis) is False      # no eviction
        assert analysis.response.status == 503
        assert browse.response is None

    def test_close_sheds_everything_queued(self):
        admission = AdmissionController(max_queue_depth=4, obs=Observability())
        tasks = [_task() for _ in range(3)]
        for task in tasks:
            admission.submit(task)
        admission.close()
        assert all(task.response.status == 503 for task in tasks)
        assert admission.submit(_task()) is False       # closed

    def test_report_carries_the_panel_fields(self):
        admission = AdmissionController(max_queue_depth=4, obs=Observability())
        admission.submit(_task())
        report = admission.report()
        assert report["depth"][CLASS_BROWSE] == 1
        assert report["admitted"][CLASS_BROWSE] == 1
        assert report["retry_after_s"] >= 1.0


class TestSyncExecutor:
    def test_sync_server_serves_pages(self, stack):
        response = stack.web.handle(
            stack.request(f"/hedc/hle?id={stack.hle_ids[0]}"))
        assert response.status == 200
        assert stack.web.serving_report()["scheduler"] == "sync"

    def test_route_bulkhead_releases_on_servlet_exception(self, tmp_path):
        # Satellite audit: a raising servlet must not leak its bulkhead
        # permit — with a cap of 1, a leak would 503 every later request.
        stack = build_serving_stack(tmp_path / "boom", n_hles=4, rtt_s=0.0,
                                    route_limits={"/boom": 1})
        try:
            def explode(request):
                raise RuntimeError("boom")

            stack.web.router.add("/boom", explode)
            request = stack.request("/boom")
            for _attempt in range(3):
                assert stack.web.handle(request).status == 500
            assert stack.web._route_bulkheads["/boom"].in_use == 0
        finally:
            stack.shutdown()


class TestWorkerPool:
    def test_pool_serves_pages_and_reports(self, pool_stack):
        response = pool_stack.web.handle(
            pool_stack.request(f"/hedc/hle?id={pool_stack.hle_ids[0]}"))
        assert response.status == 200
        report = pool_stack.web.serving_report()
        assert report["scheduler"] == "pool"
        assert report["n_workers"] == 8
        assert report["queue"]["priorities"] is True

    def test_submit_is_non_blocking_and_resolves(self, pool_stack):
        tasks = [pool_stack.web.submit(
            pool_stack.request(f"/hedc/hle?id={hle_id}"))
            for hle_id in pool_stack.hle_ids]
        for task in tasks:
            response = task.result(timeout=10.0)
            assert response is not None and response.status == 200

    def test_metrics_servlet_exposes_the_serving_panel(self, pool_stack):
        import json

        response = pool_stack.web.handle(
            pool_stack.request("/hedc/metrics?format=json"))
        body = json.loads(response.body)
        assert body["serving"]["scheduler"] == "pool"
        assert body["serving"]["queue"]["max_queue_depth"] == 64
        assert "/hedc/analyze" in body["serving"]["routes"]

    def test_debug_servlet_renders_the_serving_panel(self, pool_stack):
        response = pool_stack.web.handle(pool_stack.request("/hedc/debug"))
        assert response.status == 200
        assert b"serving" in response.body


class TestPriorityScheduling:
    """Deterministic priority tests: one worker, gate-blocked."""

    def _gated_stack(self, tmp_path, **kwargs):
        stack = build_serving_stack(tmp_path, n_hles=4, rtt_s=0.0,
                                    scheduler="pool", n_workers=1,
                                    **kwargs)
        gate = threading.Event()
        started = threading.Event()

        def plug(request):
            started.set()
            gate.wait(10.0)
            return HttpResponse.html("<p>unplugged</p>")

        stack.web.router.add("/plug", plug)
        return stack, gate, started

    def test_no_priority_inversion_analysis_overtakes_queued_browse(
            self, tmp_path):
        stack, gate, started = self._gated_stack(tmp_path, max_queue_depth=8)
        try:
            stack.web.submit(stack.request("/plug"))    # occupy the worker
            assert started.wait(5.0)
            browse = [stack.web.submit(
                stack.request(f"/hedc/hle?id={stack.hle_ids[0]}"))
                for _ in range(3)]
            analysis = stack.web.submit(
                stack.request("/hedc/search?min_rate=50"))
            gate.set()
            assert analysis.result(10.0).status == 200
            for task in browse:
                assert task.result(10.0).status == 200
            # The analysis arrived last but was served first: its
            # resolution precedes every browse resolution.
            assert all(analysis.resolved_at <= task.resolved_at
                       for task in browse)
        finally:
            gate.set()
            stack.shutdown()

    def test_full_queue_sheds_browse_to_admit_analysis(self, tmp_path):
        stack, gate, started = self._gated_stack(tmp_path, max_queue_depth=2)
        try:
            stack.web.submit(stack.request("/plug"))
            assert started.wait(5.0)
            browse = [stack.web.submit(
                stack.request(f"/hedc/hle?id={stack.hle_ids[0]}"))
                for _ in range(2)]                      # queue now full
            analysis = stack.web.submit(
                stack.request("/hedc/search?min_rate=50"))
            # The newest browse was shed immediately, 503 + Retry-After.
            shed = browse[1]
            assert shed.done and shed.response.status == 503
            assert "Retry-After" in shed.response.headers
            gate.set()
            assert analysis.result(10.0).status == 200
            assert browse[0].result(10.0).status == 200
        finally:
            gate.set()
            stack.shutdown()

    def test_queued_past_deadline_expires_without_occupying_the_worker(
            self, tmp_path):
        stack, gate, started = self._gated_stack(tmp_path,
                                                 max_queue_depth=8,
                                                 request_budget_s=0.15)
        served = []
        original = stack.web._serve
        stack.web._serve = lambda task: (served.append(task.route),
                                         original(task))[1]
        try:
            plug_task = stack.web.submit(stack.request("/plug"))
            assert started.wait(5.0)
            queued = stack.web.submit(
                stack.request(f"/hedc/hle?id={stack.hle_ids[0]}"))
            time.sleep(0.3)                 # budget expires while queued
            gate.set()
            response = queued.result(10.0)
            assert response.status == 504
            # The worker never dispatched the expired request.
            assert "/hedc/hle" not in served
            registry = stack.obs.registry
            expired = [metric.value for metric in
                       registry.family("web.sched.expired")
                       if metric.labels.get("cls") == CLASS_BROWSE]
            assert sum(expired) == 1
            assert plug_task.result(10.0) is not None
        finally:
            gate.set()
            stack.shutdown()


class TestFairnessUnderOverload:
    def test_analysis_goodput_protected_at_two_x_overload(self, tmp_path):
        """The acceptance shape: under 2x-capacity overload with
        admission control, analysis-class goodput stays within 10% of
        its uncontended (= offered) rate while browse is shed; without
        admission control, analysis degrades with everyone else."""
        stack = build_serving_stack(tmp_path / "ac", scheduler="pool",
                                    n_workers=8, admission_control=True,
                                    max_queue_depth=32)
        capacity = run_closed_loop(stack, mixed_class_mix(stack),
                                   n_clients=16,
                                   duration_s=0.8).throughput_rps
        overload = run_open_loop(stack, mixed_class_mix(stack),
                                 rate_rps=2.0 * capacity, duration_s=1.5)
        stack.shutdown()
        summary = overload.summary()
        analysis = summary["classes"]["analysis"]
        browse = summary["classes"]["browse"]
        # Uncontended, every offered analysis request completes; under
        # overload, strict priority keeps it that way within 10%.
        assert analysis["ok"] >= 0.9 * analysis["sent"]
        assert browse["shed"] > 0

        baseline = build_serving_stack(tmp_path / "fifo", scheduler="pool",
                                       n_workers=8, admission_control=False,
                                       max_queue_depth=32)
        fifo = run_open_loop(baseline, mixed_class_mix(baseline),
                             rate_rps=2.0 * capacity, duration_s=1.5)
        baseline.shutdown()
        fifo_analysis = fifo.summary()["classes"]["analysis"]
        # Plain FIFO sheds classes indiscriminately: analysis goodput is
        # strictly worse than under priority admission.
        assert fifo_analysis["goodput_rps"] < analysis["goodput_rps"]


class TestBatchedPageFetch:
    def test_batched_and_unbatched_pages_are_byte_identical(self, stack):
        request = stack.request(f"/hedc/hle?id={stack.hle_ids[0]}")
        stack.dm.batched_pages = True
        batched = stack.web.handle(request)
        stack.dm.batched_pages = False
        unbatched = stack.web.handle(request)
        assert batched.status == unbatched.status == 200
        assert batched.body == unbatched.body

    def test_page_round_trips_collapse_seven_to_three(self, stack):
        io_stats = stack.dm.io.stats
        request = stack.request(f"/hedc/hle?id={stack.hle_ids[0]}")
        deltas = {}
        for batched in (True, False):
            stack.dm.batched_pages = batched
            queries, trips = io_stats.queries, io_stats.round_trips
            assert stack.web.handle(request).status == 200
            deltas[batched] = (io_stats.queries - queries,
                               io_stats.round_trips - trips)
        assert deltas[False] == (7, 7)
        assert deltas[True][0] == 7          # logical queries unchanged
        assert deltas[True][1] <= 3

    def test_fetch_page_results_match_across_paths(self, stack):
        user = stack.dm.authenticate("loadgen", "loadgen-pw")
        batched = stack.dm.fetch_page(user, stack.hle_ids[0], batched=True)
        unbatched = stack.dm.fetch_page(user, stack.hle_ids[0], batched=False)
        assert batched.hle == unbatched.hle
        assert batched.analyses == unbatched.analyses
        assert batched.n_analyses == unbatched.n_analyses
        assert batched.n_catalogs == unbatched.n_catalogs
        assert batched.similar == unbatched.similar
        assert batched.neighbours == unbatched.neighbours
        assert batched.files == unbatched.files
        assert batched.batched and not unbatched.batched


class TestThinClientRetryAfter:
    def test_client_backs_off_for_the_server_hint(self, stack):
        client = ThinClient(stack.web)
        sleeps = []
        client._sleep = sleeps.append
        responses = [HttpResponse.error(503, "shed"), HttpResponse.html("ok")]
        responses[0].headers["Retry-After"] = "2"
        stack.web.handle = lambda request: responses.pop(0)
        response = client.get("/hedc/catalogs")
        assert response.status == 200
        assert sleeps == [2.0]
        registry = stack.obs.registry
        waits = sum(metric.value for metric in
                    registry.family("client.retry_after_waits"))
        assert waits == 1

    def test_hint_is_capped_and_retries_bounded(self, stack):
        client = ThinClient(stack.web)
        sleeps = []
        client._sleep = sleeps.append

        def always_shed(request):
            response = HttpResponse.error(503, "shed")
            response.headers["Retry-After"] = "30"
            return response

        stack.web.handle = always_shed
        response = client.get("/hedc/catalogs")
        assert response.status == 503
        assert sleeps == [client.max_retry_after_s]     # capped, once

    def test_503_without_hint_is_not_retried(self, stack):
        client = ThinClient(stack.web)
        client._sleep = pytest.fail                     # must not sleep
        calls = []

        def shed_without_hint(request):
            calls.append(request)
            return HttpResponse.error(503, "shed")

        stack.web.handle = shed_without_hint
        assert client.get("/hedc/catalogs").status == 503
        assert len(calls) == 1


class TestLoadHarness:
    def test_closed_loop_reports_per_class_outcomes(self, pool_stack):
        result = run_closed_loop(pool_stack, browse_mix(pool_stack),
                                 n_clients=4, duration_s=0.3)
        summary = result.summary()
        assert summary["mode"] == "closed"
        assert summary["ok"] > 0
        assert "browse" in summary["classes"]
        assert summary["classes"]["browse"]["p95_s"] >= \
            summary["classes"]["browse"]["p50_s"]

    def test_open_loop_offers_a_fixed_rate(self, pool_stack):
        result = run_open_loop(pool_stack, browse_mix(pool_stack),
                               rate_rps=50.0, duration_s=0.5)
        assert result.mode == "open"
        assert result.sent == pytest.approx(25, abs=10)
        assert result.ok > 0

    def test_remote_database_charges_one_rtt_per_round_trip(self, tmp_path):
        stack = build_serving_stack(tmp_path, n_hles=4, rtt_s=0.02)
        try:
            user = stack.dm.authenticate("loadgen", "loadgen-pw")
            started = time.perf_counter()
            stack.dm.fetch_page(user, stack.hle_ids[0], batched=True)
            batched_s = time.perf_counter() - started
            started = time.perf_counter()
            stack.dm.fetch_page(user, stack.hle_ids[0], batched=False)
            unbatched_s = time.perf_counter() - started
        finally:
            stack.shutdown()
        # 3 sleeps vs 7 sleeps of 20ms: the batched page is decisively
        # cheaper in wall-clock, with generous slack for scheduler noise.
        assert batched_s < 0.02 * 5
        assert unbatched_s > 0.02 * 6
        assert unbatched_s > batched_s
