"""A full mission-lifecycle soak test.

Exercises the change-absorption story end to end in one scenario, the
way the paper says HEDC actually lived (§3.1): two observation windows
arrive, users work, a recalibration lands, archives are reorganised,
maintenance purges stale private data — and every invariant holds
throughout.
"""

import numpy as np
import pytest

from repro import Hedc
from repro.dm import PurgeRule
from repro.filestore import DiskArchive
from repro.metadb import Comparison, Select
from repro.pl import Phase
from repro.rhessi import standard_day_plan


@pytest.fixture(scope="module")
def mission(tmp_path_factory):
    root = tmp_path_factory.mktemp("mission")
    hedc = Hedc.create(root)

    # Day 1 and day 2 arrive as separate downlinks.
    plan1 = standard_day_plan(duration=300.0, seed=101, n_flares=2, n_bursts=0, n_saa=0)
    plan2 = standard_day_plan(duration=300.0, seed=202, n_flares=1, n_bursts=1, n_saa=0)
    # Shift day 2 to follow day 1 in mission time.
    plan2.start = 300.0
    for phenomenon in list(plan2.phenomena):
        pass  # phenomena are absolute within their own plan; windows differ by seed
    report1 = hedc.ingest_observation(plan=plan1, seed=101)
    report2 = hedc.ingest_observation(plan=plan2, seed=202)

    alice = hedc.register_user("alice", "pw")
    bob = hedc.register_user("bob", "pw")
    return hedc, alice, bob, report1, report2, root


class TestMissionLifecycle:
    def test_both_downlinks_catalogued(self, mission):
        hedc, _alice, _bob, report1, report2, _root = mission
        events = hedc.events()
        assert len(events) == len(report1.hle_ids) + len(report2.hle_ids)
        totals = hedc.dm.reports.repository_totals()
        assert totals["raw_units"] == report1.n_units + report2.n_units

    def test_users_work_and_share(self, mission):
        hedc, alice, bob, _r1, _r2, _root = mission
        events = hedc.events()
        first = hedc.analyze(alice, events[0]["hle_id"], "lightcurve", publish=True)
        assert first.phase is Phase.COMMITTED
        # Bob sees Alice's shared result and avoids recomputation.
        found = hedc.dm.semantic.find_existing_analysis(
            bob, events[0]["hle_id"], "lightcurve"
        )
        assert found is not None and found["ana_id"] == first.ana_id
        # Bob's own private work stays private.
        second = hedc.analyze(bob, events[1]["hle_id"], "histogram")
        assert second.phase is Phase.COMMITTED
        from repro.dm import EntityNotFound

        with pytest.raises(EntityNotFound):
            hedc.dm.semantic.get_analysis(alice, second.ana_id)

    def test_recalibration_supersedes_every_unit(self, mission):
        hedc, _alice, _bob, _r1, _r2, _root = mission
        hedc.dm.process.publish_calibration(
            (1.02,) * 9, (0.15,) * 9, note="in-flight gain drift"
        )
        units = hedc.dm.io.execute(
            Select("raw_units", where=Comparison("calibration_version", "=", 1))
        )
        assert units
        for unit in units:
            if unit["superseded_by"]:
                continue
            hedc.dm.process.recalibrate_unit(unit["unit_id"], "main")
        old = hedc.dm.io.execute(
            Select("raw_units", where=Comparison("calibration_version", "=", 1))
        )
        assert all(row["superseded_by"] for row in old)
        lineage = hedc.dm.io.execute(Select("ops_lineage"))
        assert sum(1 for row in lineage if row["kind"] == "recalibration") == len(old)

    def test_archive_reorganisation_mid_mission(self, mission):
        hedc, alice, _bob, _r1, _r2, root = mission
        cold = DiskArchive("cold", root / "cold")
        hedc.dm.io.storage.register(cold)
        hedc.dm.io.names.register_archive("cold", str(cold.root))
        moved = hedc.dm.process.relocate_archive("main", "cold")
        assert moved > 0
        # The system keeps answering: a new analysis runs on relocated data.
        events = hedc.events()
        request = hedc.analyze(alice, events[0]["hle_id"], "histogram",
                               {"n_bins": 32})
        assert request.phase is Phase.COMMITTED, request.error

    def test_maintenance_purges_only_stale_private_data(self, mission):
        import time

        hedc, alice, bob, _r1, _r2, _root = mission
        from repro.metadb import Update

        # Backdate all of bob's private analyses.
        hedc.dm.io.execute(
            Update("ana", {"created_at": time.time() - 10 * 86_400},
                   Comparison("owner_id", "=", bob.user_id))
        )
        hedc.dm.maintenance.add_purge_rule(PurgeRule("week", max_age_s=7 * 86_400))
        reports = hedc.dm.maintenance.apply_purge_rules()
        assert sum(report.analyses_deleted for report in reports) >= 1
        # Alice's published analysis survived.
        published = hedc.dm.io.execute(
            Select("ana", where=Comparison("public", "=", True))
        )
        assert published

    def test_final_integrity_sweep(self, mission):
        hedc, _alice, _bob, _r1, _r2, _root = mission
        # Every loc_files row points at an existing file.
        for reference in hedc.dm.io.execute(Select("loc_files")):
            archive = hedc.dm.io.storage.archive(reference["archive_id"])
            assert archive.exists(reference["rel_path"]), reference
        # Every ANA references an existing HLE and owner.
        hle_ids = {row["hle_id"] for row in hedc.dm.io.execute(Select("hle"))}
        user_ids = {row["user_id"] for row in hedc.dm.io.execute(Select("admin_users"))}
        for analysis in hedc.dm.io.execute(Select("ana")):
            assert analysis["hle_id"] in hle_ids
            assert analysis["owner_id"] in user_ids
        # Catalog member counts are accurate.
        for catalog in hedc.dm.io.execute(Select("catalogs")):
            members = hedc.dm.io.execute(
                Select("catalog_members",
                       where=Comparison("catalog_id", "=", catalog["catalog_id"]))
            )
            assert catalog["n_members"] == len(members)
        # No orphan files remain on the main archive.
        assert hedc.dm.maintenance.scrub_orphan_files("main") == 0
