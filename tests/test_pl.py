"""Tests for the Processing Logic: directory, server manager, frontend,
4-phase requests, strategies, cancellation and fault recovery."""

import pytest

from repro.pl import (
    AnalysisRequest,
    AnalysisStrategy,
    Frontend,
    GlobalDirectory,
    IdlServerManager,
    Phase,
    UnknownRequestType,
)
from repro.rhessi import TelemetryGenerator, package_units, standard_day_plan


@pytest.fixture()
def stack(dm, tmp_path):
    """DM + loaded data + started PL stack."""
    plan = standard_day_plan(duration=240.0, seed=17, n_flares=1, n_bursts=0, n_saa=0)
    photons = TelemetryGenerator(plan, seed=17).generate()
    units = package_units(photons, tmp_path / "in", unit_target_photons=10**6)
    for unit in units:
        dm.process.load_raw_unit(unit, "main")
    alice = dm.users.create_user("alice", "pw", group="scientist")
    directory = GlobalDirectory()
    manager = IdlServerManager("server", n_servers=2, directory=directory)
    manager.start_all()
    frontend = Frontend(dm, manager, directory=directory)
    hle = dm.semantic.find_hles(alice)[0]
    return dm, frontend, manager, directory, alice, hle


class TestGlobalDirectory:
    def test_register_lookup_deregister(self):
        directory = GlobalDirectory()
        directory.register("idl_manager:a", "idl_manager", "node-a", capacity=2)
        directory.register("frontend:x", "frontend", "node-x")
        managers = directory.lookup("idl_manager")
        assert len(managers) == 1 and managers[0].capacity == 2
        directory.deregister("idl_manager:a")
        assert directory.lookup("idl_manager") == []

    def test_stale_services_purged(self):
        directory = GlobalDirectory(heartbeat_timeout_s=0.0)
        directory.register("idl_manager:a", "idl_manager", "node-a")
        import time

        time.sleep(0.01)
        assert directory.lookup("idl_manager") == []
        assert directory.size == 0

    def test_heartbeat_keeps_service_alive(self):
        directory = GlobalDirectory(heartbeat_timeout_s=10.0)
        directory.register("s", "frontend", "n")
        directory.heartbeat("s")
        assert len(directory.lookup("frontend")) == 1


class TestIdlServerManager:
    def test_start_registers_in_directory(self):
        directory = GlobalDirectory()
        manager = IdlServerManager("node", n_servers=2, directory=directory)
        manager.start_all()
        assert manager.n_available == 2
        assert directory.lookup("idl_manager")[0].capacity == 2
        manager.stop_all()
        assert directory.lookup("idl_manager") == []

    def test_dynamic_add_remove(self):
        manager = IdlServerManager("node", n_servers=1)
        manager.start_all()
        manager.add_server()
        assert manager.n_servers == 2
        manager.remove_server()
        assert manager.n_servers == 1
        with pytest.raises(ValueError):
            manager.remove_server()

    def test_invoke_runs_source(self, photons_small):
        manager = IdlServerManager("node", n_servers=1)
        manager.start_all()
        result = manager.invoke("total(findgen(5))")
        assert result.ok and result.value == 10.0

    def test_crash_recovery_with_retry(self):
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] == 1:
                raise OSError("segfault")

        manager = IdlServerManager("node", n_servers=1, fault_hook=flaky)
        manager.start_all()
        result = manager.invoke("40 + 2", retries=1)
        assert result.ok and result.value == 42
        assert manager.recoveries >= 1

    def test_async_invoke(self):
        manager = IdlServerManager("node", n_servers=1)
        manager.start_all()
        future = manager.invoke_async("6 * 7")
        assert future.result(timeout=10).value == 42

    def test_stats(self):
        manager = IdlServerManager("node", n_servers=1)
        manager.start_all()
        manager.invoke("1")
        stats = manager.stats()
        assert stats["invocations"] == 1
        assert stats["servers"] == 1


class TestFourPhases:
    def test_estimation_returns_plan_immediately(self, stack):
        _dm, frontend, _mgr, _dir, alice, hle = stack
        request = AnalysisRequest(alice, hle["hle_id"], "imaging", {"n_pixels": 16})
        frontend.estimate(request)
        assert request.phase is Phase.ESTIMATED
        assert request.plan.predicted_seconds > 0
        assert request.plan.input_mb > 0
        assert request.ana_id is None  # nothing executed yet

    def test_estimation_flags_oversized_requests_infeasible(self, stack):
        """§5.1: estimation determines feasibility; §6.3 points at views."""
        dm, frontend, _mgr, _dir, alice, _hle = stack
        huge = dm.semantic.insert_hle(
            alice,
            {"start_time": 0.0, "end_time": 86_400.0,
             "total_counts": 500_000_000},  # ~7 GB of photons
        )
        request = AnalysisRequest(alice, huge, "spectroscopy", {})
        frontend.estimate(request)
        assert not request.plan.feasible
        assert "approximated" in request.plan.reason
        # Running with estimate=True refuses the execution phase.
        frontend.run(request, estimate=True)
        assert request.phase is Phase.FAILED
        assert "infeasible" in request.error

    def test_full_lifecycle_all_algorithms(self, stack):
        dm, frontend, _mgr, _dir, alice, hle = stack
        for algorithm in ("imaging", "lightcurve", "spectroscopy", "histogram"):
            request = AnalysisRequest(
                alice, hle["hle_id"], algorithm,
                {"n_pixels": 16} if algorithm == "imaging" else {},
            )
            frontend.run(request)
            assert request.phase is Phase.COMMITTED, request.error
            stored = dm.semantic.get_analysis(alice, request.ana_id)
            assert stored["algorithm"] == algorithm
            assert stored["n_images"] >= 1
            assert stored["n_photons_used"] > 0

    def test_three_queries_two_edits_per_analysis(self, stack):
        """The Tables 2/3 accounting: 3 queries + 2 edits per analysis.

        Uses an uncached frontend — the workload characterization must
        exercise the full pipeline on every run, and the product cache
        would serve runs 2 and 3 with zero queries/edits otherwise.
        """
        dm, _frontend, manager, directory, alice, hle = stack
        frontend = Frontend(dm, manager, directory=directory,
                            cache_products=False)
        for _run in range(3):
            frontend.run(AnalysisRequest(alice, hle["hle_id"], "histogram", {}))
        stats = frontend.stats()
        assert stats["queries"] == 9
        assert stats["edits"] == 6

    def test_commit_records_usage(self, stack):
        dm, frontend, _mgr, _dir, alice, hle = stack
        frontend.run(AnalysisRequest(alice, hle["hle_id"], "lightcurve", {}))
        from repro.metadb import Select

        usage = dm.io.execute(Select("ops_usage"))
        assert any(row["operation"] == "analysis:lightcurve" for row in usage)

    def test_unknown_algorithm_rejected(self, stack):
        _dm, frontend, _mgr, _dir, alice, hle = stack
        with pytest.raises(UnknownRequestType):
            frontend.estimate(AnalysisRequest(alice, hle["hle_id"], "teleportation"))

    def test_cancellation_before_execution(self, stack):
        _dm, frontend, _mgr, _dir, alice, hle = stack
        request = AnalysisRequest(alice, hle["hle_id"], "imaging", {"n_pixels": 16})
        request.cancel()
        frontend.run(request)
        assert request.phase is Phase.CANCELLED
        assert request.ana_id is None
        assert request.product is None  # cleanup dropped intermediates

    def test_failure_reported_not_raised(self, stack):
        _dm, frontend, _mgr, _dir, alice, _hle = stack
        request = AnalysisRequest(alice, 99999, "imaging", {})
        frontend.run(request)
        assert request.phase is Phase.FAILED
        assert "not found" in request.error

    def test_guest_cannot_analyze(self, stack):
        dm, frontend, _mgr, _dir, _alice, hle = stack
        guest = dm.users.create_user("guest", "pw", group="guest")
        request = AnalysisRequest(guest, hle["hle_id"], "histogram", {})
        frontend.run(request)
        assert request.phase is Phase.FAILED

    def test_sojourn_recorded(self, stack):
        _dm, frontend, _mgr, _dir, alice, hle = stack
        request = frontend.run(AnalysisRequest(alice, hle["hle_id"], "histogram", {}))
        assert request.sojourn_s is not None and request.sojourn_s > 0


class TestStrategyFramework:
    def test_custom_strategy_registration(self, stack):
        """§5.1: new processing environments plug in as strategies."""
        dm, frontend, _mgr, _dir, alice, hle = stack

        class CountingStrategy(AnalysisStrategy):
            algorithm = "photon_count"

            def execute(self, request, context):
                hle_row = context.fetch_hle(request.user, request.hle_id)
                request.hle_row = hle_row
                photons = context.load_photons_for(hle_row)
                context.check_existing(request.user, request.hle_id, self.algorithm)
                return len(photons)

            def deliver(self, request, context):
                from repro.analysis import AnalysisProduct, render_series_pgm
                import numpy as np

                product = AnalysisProduct(self.algorithm, {})
                product.add_image(render_series_pgm(np.array([float(request.raw_result)])))
                product.summary = {"count": request.raw_result}
                return product

        frontend.register_strategy(CountingStrategy())
        request = frontend.run(AnalysisRequest(alice, hle["hle_id"], "photon_count", {}))
        assert request.phase is Phase.COMMITTED
        stored = dm.semantic.get_analysis(alice, request.ana_id)
        assert stored["algorithm"] == "photon_count"

    def test_imaging_reuse_hint_on_repeat(self, stack):
        """§3.5: a repeated request learns about the existing result.

        With the product cache in front, a repeat-identical request is
        served straight from the cache (same ana_id, no recomputation); a
        same-algorithm request with *different* parameters misses the
        cache, runs the pipeline, and gets the strategy-level reuse hint.
        """
        _dm, frontend, _mgr, _dir, alice, hle = stack
        first = frontend.run(AnalysisRequest(alice, hle["hle_id"], "imaging",
                                             {"n_pixels": 16}))
        second = AnalysisRequest(alice, hle["hle_id"], "imaging", {"n_pixels": 16})
        frontend.run(second)
        assert second.parameters.get("served_from_cache") is True
        assert second.ana_id == first.ana_id
        third = AnalysisRequest(alice, hle["hle_id"], "imaging", {"n_pixels": 32})
        frontend.run(third)
        assert third.parameters.get("reused_ana_id") == first.ana_id
        assert third.ana_id != first.ana_id


class TestQueuedScheduling:
    def test_priority_order_respected(self, stack):
        dm, _frontend, manager, directory, alice, hle = stack
        frontend = Frontend(dm, manager, directory=directory, n_workers=1)
        order = []

        class RecordingStrategy(AnalysisStrategy):
            algorithm = "recorder"

            def execute(self, request, context):
                order.append(request.parameters["tag"])
                return 0

            def deliver(self, request, context):
                from repro.analysis import AnalysisProduct

                return AnalysisProduct(self.algorithm, {})

            def commit(self, request, context):
                return 0

        frontend.register_strategy(RecordingStrategy())
        # Stall the worker with a first request, then enqueue out of order.
        import threading

        gate = threading.Event()

        class GateStrategy(RecordingStrategy):
            algorithm = "gate"

            def execute(self, request, context):
                gate.wait(timeout=10)
                return 0

        frontend.register_strategy(GateStrategy())
        frontend.submit(AnalysisRequest(alice, hle["hle_id"], "gate", {"tag": "gate"}))
        frontend.submit(AnalysisRequest(alice, hle["hle_id"], "recorder",
                                        {"tag": "low"}, priority=9))
        frontend.submit(AnalysisRequest(alice, hle["hle_id"], "recorder",
                                        {"tag": "high"}, priority=1))
        gate.set()
        frontend.drain()
        assert order == ["high", "low"]
        frontend.close()

    def test_submit_without_workers_rejected(self, stack):
        _dm, frontend, _mgr, _dir, alice, hle = stack
        with pytest.raises(RuntimeError):
            frontend.submit(AnalysisRequest(alice, hle["hle_id"], "histogram", {}))
