"""Stateful property test: the database against a Python-dict model.

A random interleaving of inserts, updates, deletes, point queries, range
queries and transactions (with rollbacks) must always agree with a plain
in-memory model — regardless of which indexes served each query.
"""

import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro.metadb import (
    Between,
    Column,
    ColumnType,
    Comparison,
    Database,
    Delete,
    Insert,
    IntegrityError,
    Select,
    TableSchema,
    Update,
)

KEYS = st.integers(min_value=0, max_value=30)
VALUES = st.integers(min_value=-50, max_value=50)


class DatabaseModel(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.db = Database()
        self.db.create_table(
            TableSchema(
                "t",
                [
                    Column("k", ColumnType.INTEGER, nullable=False),
                    Column("v", ColumnType.INTEGER),
                    Column("tag", ColumnType.TEXT),
                ],
                primary_key="k",
                indexes=[("v",)],
            )
        )
        self.model: dict[int, dict] = {}
        self.tx = None
        self.tx_shadow: dict[int, dict] = {}

    # -- mutations ----------------------------------------------------------

    @rule(key=KEYS, value=VALUES, tag=st.sampled_from(["a", "b", "c"]))
    def insert(self, key, value, tag):
        row = {"k": key, "v": value, "tag": tag}
        if key in self.model:
            with pytest.raises(IntegrityError):
                self.db.execute(Insert("t", row), tx=self.tx)
        else:
            self.db.execute(Insert("t", row), tx=self.tx)
            self.model[key] = row

    @rule(key=KEYS, value=VALUES)
    def update(self, key, value):
        affected = self.db.execute(
            Update("t", {"v": value}, Comparison("k", "=", key)), tx=self.tx
        )
        if key in self.model:
            assert affected == 1
            self.model[key] = {**self.model[key], "v": value}
        else:
            assert affected == 0

    @rule(key=KEYS)
    def delete(self, key):
        affected = self.db.execute(
            Delete("t", Comparison("k", "=", key)), tx=self.tx
        )
        assert affected == (1 if key in self.model else 0)
        self.model.pop(key, None)

    # -- transactions ---------------------------------------------------------

    @precondition(lambda self: self.tx is None)
    @rule()
    def begin(self):
        self.tx = self.db.begin()
        self.tx_shadow = {key: dict(row) for key, row in self.model.items()}

    @precondition(lambda self: self.tx is not None)
    @rule()
    def commit(self):
        self.db.commit(self.tx)
        self.tx = None

    @precondition(lambda self: self.tx is not None)
    @rule()
    def rollback(self):
        self.db.rollback(self.tx)
        self.model = self.tx_shadow
        self.tx = None

    # -- queries agree with the model ------------------------------------------

    @rule(key=KEYS)
    def point_query(self, key):
        rows = self.db.execute(Select("t", where=Comparison("k", "=", key)))
        expected = [self.model[key]] if key in self.model else []
        assert rows == expected

    @rule(low=VALUES, high=VALUES)
    def range_query(self, low, high):
        low, high = min(low, high), max(low, high)
        rows = self.db.execute(
            Select("t", where=Between("v", low, high), order_by=[("k", "asc")])
        )
        expected = sorted(
            (row for row in self.model.values()
             if row["v"] is not None and low <= row["v"] <= high),
            key=lambda row: row["k"],
        )
        assert rows == expected

    @invariant()
    def count_agrees(self):
        rows = self.db.execute(Select("t"))
        assert len(rows) == len(self.model)


TestDatabaseStateful = DatabaseModel.TestCase
TestDatabaseStateful.settings = settings(
    max_examples=40, stateful_step_count=40, deadline=None
)
