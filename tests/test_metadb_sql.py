"""Tests for the SQL dialect: parsing, generation, round trips."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.metadb import (
    Between,
    Column,
    ColumnType,
    Comparison,
    Database,
    Delete,
    Explain,
    In,
    Insert,
    IsNull,
    Like,
    QueryError,
    Select,
    TableSchema,
    Update,
    parse,
    to_sql,
)
from repro.metadb.query import Aggregate


class TestParseSelect:
    def test_star(self):
        statement = parse("SELECT * FROM hle")
        assert isinstance(statement, Select)
        assert statement.table == "hle"
        assert statement.columns is None

    def test_columns(self):
        statement = parse("select hle_id, kind from hle")
        assert statement.columns == ["hle_id", "kind"]

    def test_where_comparisons(self):
        statement = parse("SELECT * FROM hle WHERE peak_rate >= 100.5")
        assert isinstance(statement.where, Comparison)
        assert statement.where.op == ">="
        assert statement.where.value == 100.5

    def test_ne_spellings(self):
        assert parse("SELECT * FROM t WHERE a != 1").where.op == "!="
        assert parse("SELECT * FROM t WHERE a <> 1").where.op == "!="

    def test_string_literal_with_escaped_quote(self):
        statement = parse("SELECT * FROM t WHERE name = 'O''Neil'")
        assert statement.where.value == "O'Neil"

    def test_between_in_like_isnull(self):
        assert isinstance(parse("SELECT * FROM t WHERE a BETWEEN 1 AND 2").where, Between)
        in_pred = parse("SELECT * FROM t WHERE k IN ('a', 'b')").where
        assert isinstance(in_pred, In) and in_pred.values == frozenset({"a", "b"})
        assert isinstance(parse("SELECT * FROM t WHERE s LIKE 'fl%'").where, Like)
        null_pred = parse("SELECT * FROM t WHERE x IS NOT NULL").where
        assert isinstance(null_pred, IsNull) and null_pred.negated

    def test_boolean_precedence_and_binds_tighter(self):
        statement = parse("SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3")
        # OR of [a=1, AND(b=2, c=3)]
        from repro.metadb import And, Or

        assert isinstance(statement.where, Or)
        assert isinstance(statement.where.operands[1], And)

    def test_parentheses_override_precedence(self):
        from repro.metadb import And, Or

        statement = parse("SELECT * FROM t WHERE (a = 1 OR b = 2) AND c = 3")
        assert isinstance(statement.where, And)
        assert isinstance(statement.where.operands[0], Or)

    def test_not(self):
        from repro.metadb import Not

        assert isinstance(parse("SELECT * FROM t WHERE NOT a = 1").where, Not)

    def test_order_limit_offset(self):
        statement = parse(
            "SELECT * FROM t ORDER BY a DESC, b LIMIT 10 OFFSET 5"
        )
        assert statement.order_by == [("a", "desc"), ("b", "asc")]
        assert statement.limit == 10
        assert statement.offset == 5

    def test_aggregates_and_group_by(self):
        statement = parse("SELECT kind, count(*) AS n, max(rate) FROM t GROUP BY kind")
        assert statement.group_by == ["kind"]
        assert statement.aggregates[0] == Aggregate("count", "*", "n")
        assert statement.aggregates[1].alias == "max_rate"

    def test_non_grouped_column_rejected(self):
        with pytest.raises(QueryError):
            parse("SELECT kind, rate, count(*) FROM t GROUP BY kind")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(QueryError):
            parse("SELECT * FROM t nonsense here")

    def test_empty_and_unknown_statement_rejected(self):
        with pytest.raises(QueryError):
            parse("")
        with pytest.raises(QueryError):
            parse("CREATE TABLE t (a INT)")

    def test_boolean_and_null_literals(self):
        assert parse("SELECT * FROM t WHERE flag = TRUE").where.value is True
        assert parse("UPDATE t SET a = NULL").changes == {"a": None}

    def test_scientific_notation(self):
        assert parse("SELECT * FROM t WHERE x > 1.5e3").where.value == 1500.0


class TestExplain:
    def test_parse_explain_select(self):
        statement = parse("EXPLAIN SELECT * FROM hle WHERE hle_id = 3")
        assert isinstance(statement, Explain)
        assert isinstance(statement.select, Select)
        assert statement.table == "hle"

    def test_explain_requires_select(self):
        with pytest.raises(QueryError):
            parse("EXPLAIN DELETE FROM t WHERE a < 0")

    def test_explain_round_trip(self):
        sql = "EXPLAIN SELECT * FROM hle WHERE hle_id = 3"
        assert to_sql(parse(sql)) == sql

    def test_explain_executes_to_plan_row(self):
        database = Database()
        database.create_table(
            TableSchema(
                "hle",
                [Column("hle_id", ColumnType.INTEGER, nullable=False)],
                primary_key="hle_id",
            )
        )
        database.execute(Insert("hle", {"hle_id": 3}))
        rows = database.execute("EXPLAIN SELECT * FROM hle WHERE hle_id = 3")
        assert len(rows) == 1
        assert rows[0]["table"] == "hle"
        assert rows[0]["access"] == "pk_probe"
        assert rows[0]["description"] == "PK_PROBE on hle_id"


class TestParseDml:
    def test_insert(self):
        statement = parse("INSERT INTO t (a, b) VALUES (1, 'x')")
        assert isinstance(statement, Insert)
        assert statement.values == {"a": 1, "b": "x"}

    def test_insert_count_mismatch(self):
        with pytest.raises(QueryError):
            parse("INSERT INTO t (a, b) VALUES (1)")

    def test_update(self):
        statement = parse("UPDATE t SET a = 2, b = 'y' WHERE a = 1")
        assert isinstance(statement, Update)
        assert statement.changes == {"a": 2, "b": "y"}
        assert statement.where is not None

    def test_delete(self):
        statement = parse("DELETE FROM t WHERE a < 0")
        assert isinstance(statement, Delete)


class TestGeneration:
    def test_select_round_trip_preserves_semantics(self):
        database = Database()
        database.create_table(
            TableSchema(
                "t",
                [Column("a", ColumnType.INTEGER, nullable=False),
                 Column("b", ColumnType.TEXT)],
                primary_key="a",
            )
        )
        for value in range(10):
            database.execute(Insert("t", {"a": value, "b": f"s{value}"}))
        original = Select(
            "t",
            where=(Comparison("a", ">", 2) & Comparison("a", "<", 8)),
            order_by=[("a", "desc")],
            limit=3,
        )
        round_tripped = parse(to_sql(original))
        assert database.execute(original) == database.execute(round_tripped)

    def test_quote_escaping(self):
        sql = to_sql(Insert("t", {"s": "it's"}))
        assert "''" in sql
        assert parse(sql).values == {"s": "it's"}

    def test_update_delete_generation(self):
        assert to_sql(Update("t", {"a": 1}, Comparison("b", "=", 2))) == (
            "UPDATE t SET a = 1 WHERE b = 2"
        )
        assert to_sql(Delete("t", IsNull("x"))) == "DELETE FROM t WHERE x IS NULL"

    def test_blob_literal_rejected(self):
        with pytest.raises(QueryError):
            to_sql(Insert("t", {"payload": b"\x00"}))


_names = st.sampled_from(["alpha", "beta", "gamma", "delta"])
_values = st.one_of(
    st.integers(min_value=-1_000_000, max_value=1_000_000),
    st.text(alphabet=st.characters(blacklist_characters="\x00", codec="ascii"), max_size=20),
    st.booleans(),
)


@st.composite
def _predicates(draw, depth=0):
    if depth >= 2 or draw(st.booleans()):
        kind = draw(st.sampled_from(["cmp", "between", "in", "like", "null"]))
        column = draw(_names)
        if kind == "cmp":
            op = draw(st.sampled_from(["=", "!=", "<", "<=", ">", ">="]))
            return Comparison(column, op, draw(_values))
        if kind == "between":
            low = draw(st.integers(-100, 100))
            return Between(column, low, low + draw(st.integers(0, 50)))
        if kind == "in":
            return In(column, draw(st.lists(st.integers(-10, 10), min_size=1, max_size=4)))
        if kind == "like":
            pattern = draw(st.text(alphabet="ab%_", min_size=1, max_size=6))
            return Like(column, pattern)
        return IsNull(column, negated=draw(st.booleans()))
    from repro.metadb import And, Or

    combiner = draw(st.sampled_from([And, Or]))
    operands = draw(st.lists(_predicates(depth=depth + 1), min_size=2, max_size=3))
    return combiner(operands)


class TestRoundTripProperties:
    @given(predicate=_predicates(), rows=st.lists(
        st.fixed_dictionaries({
            "alpha": st.one_of(st.none(), st.integers(-100, 100)),
            "beta": st.one_of(st.none(), st.text(alphabet="ab", max_size=4)),
            "gamma": st.one_of(st.none(), st.integers(-100, 100)),
            "delta": st.one_of(st.none(), st.booleans()),
        }),
        max_size=15,
    ))
    @settings(max_examples=120, deadline=None)
    def test_predicate_survives_sql_round_trip(self, predicate, rows):
        """parse(to_sql(p)) must match exactly the rows p matches."""
        sql = to_sql(Select("t", where=predicate))
        parsed = parse(sql)
        for row in rows:
            assert parsed.where.matches(row) == predicate.matches(row), sql
