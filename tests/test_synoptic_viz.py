"""Tests for synoptic search and catalog visualization."""

import numpy as np
import pytest

from repro.synoptic import (
    RemoteArchiveDown,
    SynopticArchive,
    SynopticSearch,
    standard_archive_set,
)
from repro.viz import CatalogArray
from repro.wavelets import decode


class TestSynopticArchive:
    def test_populate_and_query_by_time(self):
        archive = SynopticArchive("soho")
        archive.populate("EIT", 0.0, 3600.0, cadence_s=600.0)
        assert len(archive) == 6
        hits = archive.query(500.0, 1500.0)
        assert all(record.observation_time < 1500.0 for record in hits)
        assert len(hits) == 3  # 0-600 overlaps, 600, 1200

    def test_failure_rate_raises(self):
        archive = SynopticArchive("flaky", failure_rate=1.0)
        archive.add_record("X", 0.0)
        with pytest.raises(RemoteArchiveDown):
            archive.query(0.0, 10.0)
        assert archive.queries_failed == 1

    def test_records_carry_urls(self):
        archive = SynopticArchive("soho")
        record = archive.add_record("EIT", 5.0)
        assert record.url.startswith("https://soho.example/")


class TestSynopticSearch:
    def test_parallel_search_groups_by_instrument(self):
        search = SynopticSearch()
        for name, instrument in (("a", "EIT"), ("b", "LASCO")):
            archive = SynopticArchive(name)
            archive.populate(instrument, 0.0, 1000.0, cadence_s=100.0)
            search.register(archive)
        outcome = search.search(0.0, 500.0)
        assert set(outcome.records_by_instrument) == {"EIT", "LASCO"}
        assert outcome.archives_failed == []
        for records in outcome.records_by_instrument.values():
            times = [record.observation_time for record in records]
            assert times == sorted(times)

    def test_best_effort_tolerates_failed_archive(self):
        search = SynopticSearch()
        good = SynopticArchive("good")
        good.populate("EIT", 0.0, 100.0, cadence_s=10.0)
        bad = SynopticArchive("bad", failure_rate=1.0)
        bad.populate("HMI", 0.0, 100.0, cadence_s=10.0)
        search.register(good)
        search.register(bad)
        outcome = search.search(0.0, 100.0)
        assert outcome.archives_answered == ["good"]
        assert outcome.archives_failed == ["bad"]
        assert "HMI" not in outcome.records_by_instrument

    def test_standard_set_has_six_archives(self):
        """§6.4: six popular remote archives are searched."""
        search = standard_archive_set(mission_end=3600.0)
        assert search.n_archives == 6
        outcome = search.search(0.0, 3600.0)
        assert outcome.total_records > 0

    def test_empty_window_returns_nothing(self):
        search = standard_archive_set(mission_end=100.0)
        outcome = search.search(5000.0, 6000.0)
        assert outcome.total_records == 0


def _rows(n=100, seed=0):
    rng = np.random.default_rng(seed)
    return [
        {
            "start_time": float(rng.uniform(0, 1000)),
            "peak_rate": float(rng.uniform(10, 1000)),
            "mean_energy_kev": float(rng.uniform(3, 100)),
            "kind": "flare",
        }
        for _ in range(n)
    ]


class TestCatalogArray:
    def test_rows_with_nulls_dropped(self):
        rows = _rows(10) + [{"start_time": None, "peak_rate": 1.0, "mean_energy_kev": 1.0}]
        array = CatalogArray(rows, ["start_time", "peak_rate"])
        assert len(array) == 10

    def test_sorted_by_first_dimension(self):
        array = CatalogArray(_rows(50), ["start_time", "peak_rate"])
        times = array.data[:, 0]
        assert np.all(np.diff(times) >= 0)

    def test_range_selection(self):
        array = CatalogArray(_rows(200), ["start_time", "peak_rate"])
        subset = array.select(start_time=(100.0, 200.0), peak_rate=(0.0, 500.0))
        assert len(subset) < len(array)
        assert np.all(subset.data[:, 0] >= 100.0)
        assert np.all(subset.data[:, 0] < 200.0)
        assert np.all(subset.data[:, 1] < 500.0)

    def test_density_conserves_tuples(self):
        array = CatalogArray(_rows(300), ["start_time", "peak_rate"])
        density, _x, _y = array.density("start_time", "peak_rate", bins=16)
        assert density.sum() == 300

    def test_density_1d(self):
        array = CatalogArray(_rows(100), ["start_time", "peak_rate"])
        counts, edges = array.density_1d("peak_rate", bins=20)
        assert counts.sum() == 100
        assert len(edges) == 21

    def test_extents_cover_all_tuples(self):
        array = CatalogArray(_rows(100), ["start_time", "peak_rate"])
        extents = array.extents("start_time", "peak_rate")
        assert sum(extent.count for extent in extents) == 100
        for extent in extents:
            assert extent.x_low <= extent.x_high
            assert extent.y_low <= extent.y_high

    def test_clustering_respects_gap(self):
        rows = [
            {"t": 0.0, "v": 1.0}, {"t": 1.0, "v": 2.0},   # cluster 1
            {"t": 100.0, "v": 3.0},                        # cluster 2
        ]
        array = CatalogArray(rows, ["t", "v"])
        extents = array.extents("t", "v", cluster_gap=10.0)
        assert len(extents) == 2
        assert extents[0].count == 2

    def test_encoded_density_decodes_client_side(self):
        array = CatalogArray(_rows(500), ["start_time", "peak_rate"])
        stream = array.encode_density("start_time", bins=128, quantizer_step=0.1)
        full = CatalogArray.decode_density(stream.payload)
        assert full.sum() == pytest.approx(500, rel=0.02)
        approx = CatalogArray.decode_density(stream.prefix(1))
        assert len(approx) == 128

    def test_empty_catalog(self):
        array = CatalogArray([], ["start_time", "peak_rate"])
        assert len(array) == 0
        density, _x, _y = array.density("start_time", "peak_rate", bins=4)
        assert density.sum() == 0
        assert array.extents("start_time", "peak_rate") == []

    def test_unknown_dimension_rejected(self):
        array = CatalogArray(_rows(5), ["start_time", "peak_rate"])
        with pytest.raises(KeyError):
            array.density("ghost", "peak_rate")
        with pytest.raises(ValueError):
            CatalogArray(_rows(5), [])
