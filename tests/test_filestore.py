"""Tests for archives, checksums and hierarchical storage management."""

import pytest

from repro.filestore import (
    ArchiveError,
    ArchiveOffline,
    DiskArchive,
    NotStaged,
    RemoteArchive,
    StorageManager,
    TapeArchive,
    checksum_bytes,
    checksum_file,
    verify_file,
)


class TestChecksums:
    def test_bytes_and_file_agree(self, tmp_path):
        payload = b"photon data" * 1000
        path = tmp_path / "data.bin"
        path.write_bytes(payload)
        assert checksum_bytes(payload) == checksum_file(path)
        assert verify_file(path, checksum_bytes(payload))
        assert not verify_file(path, "0" * 64)


class TestDiskArchive:
    def test_store_retrieve_round_trip(self, tmp_path):
        archive = DiskArchive("a", tmp_path / "a")
        item = archive.store("raw/unit1.fits", b"DATA")
        assert item.size == 4
        assert archive.retrieve("raw/unit1.fits") == b"DATA"
        assert archive.exists("raw/unit1.fits")

    def test_data_is_read_only(self, tmp_path):
        archive = DiskArchive("a", tmp_path / "a")
        archive.store("x", b"1")
        with pytest.raises(ArchiveError, match="read-only"):
            archive.store("x", b"2")

    def test_capacity_enforced(self, tmp_path):
        archive = DiskArchive("a", tmp_path / "a", capacity_bytes=10)
        archive.store("x", b"12345")
        with pytest.raises(ArchiveError, match="full"):
            archive.store("y", b"123456789")
        assert archive.capacity_left == 5

    def test_path_escape_rejected(self, tmp_path):
        archive = DiskArchive("a", tmp_path / "a")
        with pytest.raises(ArchiveError):
            archive.store("../../etc/passwd", b"nope")

    def test_offline_archive_refuses_access(self, tmp_path):
        archive = DiskArchive("a", tmp_path / "a")
        archive.store("x", b"1")
        archive.online = False
        with pytest.raises(ArchiveOffline):
            archive.retrieve("x")
        assert not archive.exists("x")
        assert archive.list_items() == []

    def test_missing_item(self, tmp_path):
        archive = DiskArchive("a", tmp_path / "a")
        with pytest.raises(ArchiveError):
            archive.retrieve("nothing")

    def test_remove_reclaims_space(self, tmp_path):
        archive = DiskArchive("a", tmp_path / "a", capacity_bytes=10)
        archive.store("x", b"1234567890")
        archive.remove("x")
        assert archive.capacity_left == 10
        archive.store("y", b"0123456789")

    def test_store_file_copies(self, tmp_path):
        source = tmp_path / "src.bin"
        source.write_bytes(b"payload")
        archive = DiskArchive("a", tmp_path / "a")
        item = archive.store_file("copied", source)
        assert archive.retrieve("copied") == b"payload"
        assert item.checksum == checksum_bytes(b"payload")

    def test_list_items_sorted(self, tmp_path):
        archive = DiskArchive("a", tmp_path / "a")
        archive.store("b/2", b"x")
        archive.store("a/1", b"x")
        assert archive.list_items() == ["a/1", "b/2"]

    def test_status_report(self, tmp_path):
        archive = DiskArchive("a", tmp_path / "a")
        archive.store("x", b"123")
        status = archive.status()
        assert status["archive_id"] == "a"
        assert status["kind"] == "disk"
        assert status["bytes_stored"] == 3


class TestTapeArchive:
    def test_unstaged_access_rejected(self, tmp_path):
        tape = TapeArchive("t", tmp_path / "t")
        tape.store("x", b"cold data")
        with pytest.raises(NotStaged):
            tape.retrieve("x")

    def test_staged_access_works(self, tmp_path):
        tape = TapeArchive("t", tmp_path / "t")
        tape.store("x", b"cold data")
        tape.stage("x")
        assert tape.retrieve("x") == b"cold data"
        assert tape.is_staged("x")
        tape.unstage("x")
        with pytest.raises(NotStaged):
            tape.retrieve("x")

    def test_stage_is_idempotent(self, tmp_path):
        tape = TapeArchive("t", tmp_path / "t")
        tape.store("x", b"1")
        tape.stage("x")
        tape.stage("x")
        assert tape.stages == 1

    def test_stage_missing_item_rejected(self, tmp_path):
        tape = TapeArchive("t", tmp_path / "t")
        with pytest.raises(ArchiveError):
            tape.stage("missing")


class TestStorageManager:
    def _manager(self, tmp_path) -> StorageManager:
        manager = StorageManager(scratch_dir=tmp_path / "scratch")
        manager.register(DiskArchive("fast", tmp_path / "fast", capacity_bytes=100))
        manager.register(DiskArchive("big", tmp_path / "big"))
        manager.register(TapeArchive("tape", tmp_path / "tape"))
        return manager

    def test_duplicate_registration_rejected(self, tmp_path):
        manager = self._manager(tmp_path)
        with pytest.raises(ArchiveError):
            manager.register(DiskArchive("fast", tmp_path / "fast2"))

    def test_place_prefers_requested_archive(self, tmp_path):
        manager = self._manager(tmp_path)
        item = manager.place("x", b"12345", prefer="big")
        assert item.archive_id == "big"

    def test_place_spills_when_preferred_full(self, tmp_path):
        manager = self._manager(tmp_path)
        item = manager.place("x", b"a" * 200, prefer="fast")
        assert item.archive_id == "big"

    def test_place_skips_offline(self, tmp_path):
        manager = self._manager(tmp_path)
        manager.archive("fast").online = False
        item = manager.place("x", b"123")
        assert item.archive_id == "big"

    def test_retrieve_stages_tape_transparently(self, tmp_path):
        manager = self._manager(tmp_path)
        manager.archive("tape").store("cold", b"archived")
        assert manager.retrieve("tape", "cold") == b"archived"

    def test_local_path_for_tape_goes_via_scratch(self, tmp_path):
        manager = self._manager(tmp_path)
        manager.archive("tape").store("cold", b"archived")
        path = manager.local_path("tape", "cold")
        assert path.read_bytes() == b"archived"
        assert "scratch" in str(path)

    def test_migrate_moves_and_verifies(self, tmp_path):
        manager = self._manager(tmp_path)
        manager.place("x", b"move me", prefer="fast")
        result = manager.migrate("x", "fast", "big")
        assert result.checksum == checksum_bytes(b"move me")
        assert not manager.archive("fast").exists("x")
        assert manager.archive("big").retrieve("x") == b"move me"
        assert manager.migrations == [result]

    def test_migrate_to_tape_then_back(self, tmp_path):
        manager = self._manager(tmp_path)
        manager.place("x", b"cold soon", prefer="big")
        manager.migrate("x", "big", "tape")
        assert manager.retrieve("tape", "x") == b"cold soon"
        manager.migrate("x", "tape", "big")
        assert manager.archive("big").retrieve("x") == b"cold soon"

    def test_backup_and_restore(self, tmp_path):
        manager = self._manager(tmp_path)
        manager.register(DiskArchive("backup", tmp_path / "backup"))
        manager.place("a", b"1", prefer="big")
        manager.place("b", b"2", prefer="big")
        assert manager.backup("big", "backup") == 2
        # Simulate loss of one item.
        manager.archive("big").remove("a")
        assert manager.restore("backup", "big") == 1
        assert manager.archive("big").retrieve("a") == b"1"

    def test_unknown_archive_rejected(self, tmp_path):
        manager = self._manager(tmp_path)
        with pytest.raises(ArchiveError):
            manager.archive("nope")

    def test_total_status_lists_all(self, tmp_path):
        manager = self._manager(tmp_path)
        ids = {status["archive_id"] for status in manager.total_status()}
        assert ids == {"fast", "big", "tape"}


class TestRemoteArchive:
    def test_behaves_like_disk(self, tmp_path):
        remote = RemoteArchive("nfs", tmp_path / "nfs")
        remote.store("x", b"remote bytes")
        assert remote.retrieve("x") == b"remote bytes"
        assert remote.kind.value == "remote"
