"""Tests for transactions, foreign keys, persistence and pooling."""

import threading

import pytest

from repro.metadb import (
    ClosedError,
    Column,
    ColumnType,
    Comparison,
    ConnectionPool,
    Database,
    Delete,
    ForeignKey,
    Insert,
    IntegrityError,
    LockTimeout,
    PoolSet,
    SchemaError,
    Select,
    TableSchema,
    Update,
)


def _parent_child(database: Database) -> None:
    database.create_table(
        TableSchema(
            "parent",
            [Column("parent_id", ColumnType.INTEGER, nullable=False),
             Column("name", ColumnType.TEXT)],
            primary_key="parent_id",
        )
    )
    database.create_table(
        TableSchema(
            "child",
            [Column("child_id", ColumnType.INTEGER, nullable=False),
             Column("parent_id", ColumnType.INTEGER)],
            primary_key="child_id",
            foreign_keys=[ForeignKey("parent_id", "parent", "parent_id")],
        )
    )


class TestDdl:
    def test_duplicate_table_rejected(self):
        database = Database()
        schema = TableSchema("t", [Column("a", ColumnType.INTEGER, nullable=False)],
                             primary_key="a")
        database.create_table(schema)
        with pytest.raises(SchemaError):
            database.create_table(schema)

    def test_fk_to_unknown_table_rejected(self):
        database = Database()
        with pytest.raises(SchemaError):
            database.create_table(
                TableSchema(
                    "child",
                    [Column("a", ColumnType.INTEGER, nullable=False)],
                    primary_key="a",
                    foreign_keys=[ForeignKey("a", "missing", "id")],
                )
            )

    def test_drop_referenced_table_rejected(self):
        database = Database()
        _parent_child(database)
        with pytest.raises(SchemaError):
            database.drop_table("parent")
        database.drop_table("child")
        database.drop_table("parent")
        assert database.table_names() == []

    def test_closed_database_refuses_work(self):
        database = Database()
        database.close()
        with pytest.raises(ClosedError):
            database.table_names()


class TestForeignKeys:
    def test_insert_requires_referenced_row(self):
        database = Database()
        _parent_child(database)
        with pytest.raises(IntegrityError):
            database.execute(Insert("child", {"child_id": 1, "parent_id": 99}))
        database.execute(Insert("parent", {"parent_id": 99}))
        database.execute(Insert("child", {"child_id": 1, "parent_id": 99}))

    def test_null_fk_allowed(self):
        database = Database()
        _parent_child(database)
        database.execute(Insert("child", {"child_id": 1, "parent_id": None}))

    def test_delete_restricted_while_referenced(self):
        database = Database()
        _parent_child(database)
        database.execute(Insert("parent", {"parent_id": 1}))
        database.execute(Insert("child", {"child_id": 1, "parent_id": 1}))
        with pytest.raises(IntegrityError):
            database.execute(Delete("parent", Comparison("parent_id", "=", 1)))
        database.execute(Delete("child"))
        database.execute(Delete("parent", Comparison("parent_id", "=", 1)))

    def test_update_to_dangling_fk_rejected(self):
        database = Database()
        _parent_child(database)
        database.execute(Insert("parent", {"parent_id": 1}))
        database.execute(Insert("child", {"child_id": 1, "parent_id": 1}))
        with pytest.raises(IntegrityError):
            database.execute(
                Update("child", {"parent_id": 42}, Comparison("child_id", "=", 1))
            )


class TestTransactions:
    def test_rollback_undoes_insert_update_delete(self):
        database = Database()
        _parent_child(database)
        database.execute(Insert("parent", {"parent_id": 1, "name": "before"}))
        tx = database.begin()
        database.execute(Insert("parent", {"parent_id": 2}), tx=tx)
        database.execute(
            Update("parent", {"name": "after"}, Comparison("parent_id", "=", 1)), tx=tx
        )
        database.execute(Delete("parent", Comparison("parent_id", "=", 2)), tx=tx)
        database.rollback(tx)
        rows = database.execute(Select("parent"))
        assert len(rows) == 1
        assert rows[0]["name"] == "before"

    def test_commit_makes_changes_durable_in_memory(self):
        database = Database()
        _parent_child(database)
        tx = database.begin()
        database.execute(Insert("parent", {"parent_id": 1}), tx=tx)
        database.commit(tx)
        assert len(database.execute(Select("parent"))) == 1

    def test_autocommit_failure_leaves_no_partial_state(self):
        database = Database()
        database.create_table(
            TableSchema(
                "t",
                [Column("a", ColumnType.INTEGER, nullable=False),
                 Column("b", ColumnType.INTEGER, nullable=False)],
                primary_key="a",
            )
        )
        with pytest.raises(IntegrityError):
            database.execute(Insert("t", {"a": 1, "b": None}))
        assert database.execute(Select("t")) == []
        assert database.stats.transactions_rolled_back == 1

    def test_committed_transaction_cannot_be_reused(self):
        from repro.metadb import TransactionError

        database = Database()
        _parent_child(database)
        tx = database.begin()
        database.commit(tx)
        with pytest.raises(TransactionError):
            database.execute(Insert("parent", {"parent_id": 1}), tx=tx)

    def test_unique_violation_rolls_back_insert_atomically(self):
        database = Database()
        database.create_table(
            TableSchema(
                "t",
                [Column("a", ColumnType.INTEGER, nullable=False),
                 Column("u", ColumnType.TEXT)],
                primary_key="a",
                unique=[("u",)],
            )
        )
        database.execute(Insert("t", {"a": 1, "u": "x"}))
        with pytest.raises(IntegrityError):
            database.execute(Insert("t", {"a": 2, "u": "x"}))
        # Index state intact: a new distinct value still inserts fine.
        database.execute(Insert("t", {"a": 2, "u": "y"}))
        assert len(database.execute(Select("t"))) == 2

    def test_stats_counters(self):
        database = Database()
        _parent_child(database)
        database.stats.reset()
        database.execute(Insert("parent", {"parent_id": 1}))
        database.execute(Select("parent"))
        database.execute(Update("parent", {"name": "n"}))
        database.execute(Delete("parent"))
        snapshot = database.stats.snapshot()
        assert snapshot["queries"] == 4
        assert snapshot["inserts"] == 1
        assert snapshot["updates"] == 1
        assert snapshot["deletes"] == 1


class TestPersistence:
    def _make(self, path) -> Database:
        database = Database(path)
        if not database.has_table("t"):
            database.create_table(
                TableSchema(
                    "t",
                    [Column("a", ColumnType.INTEGER, nullable=False),
                     Column("payload", ColumnType.BLOB),
                     Column("note", ColumnType.TEXT)],
                    primary_key="a",
                )
            )
        return database

    def test_journal_replay_restores_rows(self, tmp_path):
        database = self._make(tmp_path / "db")
        database.execute(Insert("t", {"a": 1, "note": "hello", "payload": b"\x01\x02"}))
        database.execute(Insert("t", {"a": 2, "note": "world"}))
        database.execute(Update("t", {"note": "updated"}, Comparison("a", "=", 1)))
        database.execute(Delete("t", Comparison("a", "=", 2)))
        database.close()

        reopened = Database(tmp_path / "db")
        rows = reopened.execute(Select("t"))
        assert len(rows) == 1
        assert rows[0]["note"] == "updated"
        assert rows[0]["payload"] == b"\x01\x02"

    def test_rolled_back_transaction_not_replayed(self, tmp_path):
        database = self._make(tmp_path / "db")
        tx = database.begin()
        database.execute(Insert("t", {"a": 5}), tx=tx)
        database.rollback(tx)
        database.close()
        reopened = Database(tmp_path / "db")
        assert reopened.execute(Select("t")) == []

    def test_checkpoint_then_more_changes(self, tmp_path):
        database = self._make(tmp_path / "db")
        database.execute(Insert("t", {"a": 1, "note": "snap"}))
        database.checkpoint()
        database.execute(Insert("t", {"a": 2, "note": "post-snap"}))
        database.close()
        reopened = Database(tmp_path / "db")
        notes = {row["a"]: row["note"] for row in reopened.execute(Select("t"))}
        assert notes == {1: "snap", 2: "post-snap"}

    def test_torn_journal_tail_ignored(self, tmp_path):
        database = self._make(tmp_path / "db")
        database.execute(Insert("t", {"a": 1}))
        database.close()
        journal = tmp_path / "db" / "journal.jsonl"
        with open(journal, "a") as handle:
            handle.write('{"tx": 99, "records": [{"op": "insert", "table":')
        reopened = Database(tmp_path / "db")
        assert len(reopened.execute(Select("t"))) == 1

    def test_ddl_replayed(self, tmp_path):
        database = self._make(tmp_path / "db")
        database.close()
        reopened = Database(tmp_path / "db")
        assert reopened.has_table("t")

    def test_rowids_continue_after_recovery(self, tmp_path):
        database = self._make(tmp_path / "db")
        database.execute(Insert("t", {"a": 1}))
        database.close()
        reopened = Database(tmp_path / "db")
        reopened.execute(Insert("t", {"a": 2}))
        assert len(reopened.execute(Select("t"))) == 2


class TestConnectionPool:
    def test_acquire_release_reuses_connections(self):
        database = Database()
        pool = ConnectionPool(database, size=2)
        first = pool.acquire()
        pool.release(first)
        second = pool.acquire()
        assert second is first

    def test_pool_blocks_and_times_out_when_exhausted(self):
        database = Database()
        pool = ConnectionPool(database, size=1)
        pool.acquire()
        with pytest.raises(LockTimeout):
            pool.acquire(timeout=0.05)

    def test_release_unblocks_waiter(self):
        database = Database()
        pool = ConnectionPool(database, size=1)
        held = pool.acquire()
        got = []

        def waiter():
            got.append(pool.acquire(timeout=2.0))

        thread = threading.Thread(target=waiter)
        thread.start()
        pool.release(held)
        thread.join(timeout=2.0)
        assert got and got[0] is held

    def test_context_manager(self):
        database = Database()
        _parent_child(database)
        pool = ConnectionPool(database, size=1)
        with pool as connection:
            connection.execute(Insert("parent", {"parent_id": 1}))
        assert pool.idle_count == 1

    def test_closed_pool_refuses(self):
        database = Database()
        pool = ConnectionPool(database, size=1)
        pool.close()
        with pytest.raises(ClosedError):
            pool.acquire()

    def test_poolset_has_three_pools(self):
        database = Database()
        pools = PoolSet(database)
        assert pools.queries.name == "queries"
        assert pools.updates.name == "updates"
        assert pools.auth.name == "auth"
        pools.close()

    def test_concurrent_executions_are_safe(self):
        database = Database()
        _parent_child(database)
        pool = ConnectionPool(database, size=4)
        errors = []

        def worker(base: int):
            try:
                for index in range(25):
                    connection = pool.acquire()
                    connection.execute(Insert("parent", {"parent_id": base + index}))
                    pool.release(connection)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(base * 1000,)) for base in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(database.execute(Select("parent"))) == 100
