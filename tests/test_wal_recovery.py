"""WAL torn-tail recovery: crash-consistency of the journal itself.

A crash mid-append can cut the journal at *any* byte.  Recovery must
keep every complete record, discard the torn tail (physically — so the
next append cannot concatenate onto a partial line and corrupt two
records), report the discard, and leave the journal appendable.  These
tests cut the last record at every byte boundary and prove all of it.
"""

import json

from repro.metadb import Column, ColumnType, Database, Insert, Select, TableSchema
from repro.obs import Observability


def _schema():
    return TableSchema("samples", [
        Column("id", ColumnType.INTEGER, nullable=False),
        Column("note", ColumnType.TEXT),
        Column("payload", ColumnType.BLOB),
    ], primary_key="id")


def _build_journal(path):
    """A persistent database with one DDL line and three committed rows."""
    db = Database(path=path, name="wal")
    db.create_table(_schema())
    for index in range(3):
        db.execute(Insert("samples", {
            "id": index, "note": f"row {index}", "payload": bytes([index]) * 4,
        }))
    db.close()
    return (path / "journal.jsonl").read_bytes()


class TestTornTailEveryByte:
    def test_truncation_at_every_byte_boundary_of_the_last_record(self, tmp_path):
        data = _build_journal(tmp_path / "seed")
        last_start = data.rstrip(b"\n").rfind(b"\n") + 1
        size = len(data)
        for cut in range(last_start, size + 1):
            root = tmp_path / f"cut{cut}"
            root.mkdir()
            (root / "journal.jsonl").write_bytes(data[:cut])
            db = Database(path=root, name="wal")
            rows = db.execute(Select("samples"))
            if cut >= size - 1:
                # Complete record (at worst the newline is missing):
                # nothing may be discarded.
                assert len(rows) == 3
            else:
                # Torn tail: the partial last record is discarded, every
                # earlier record survives, blobs intact.
                assert len(rows) == 2
                assert {row["id"] for row in rows} == {0, 1}
                assert rows[0]["payload"] == b"\x00" * 4
            # The journal is clean again: a fresh append must not
            # concatenate onto a partial line.
            db.execute(Insert("samples", {
                "id": 99, "note": "after recovery", "payload": b"ok",
            }))
            db.close()
            reopened = Database(path=root, name="wal")
            recovered = reopened.execute(Select("samples"))
            assert len(recovered) == len(rows) + 1
            assert any(row["id"] == 99 for row in recovered)
            reopened.close()

    def test_torn_bytes_are_physically_removed(self, tmp_path):
        data = _build_journal(tmp_path / "seed")
        last_start = data.rstrip(b"\n").rfind(b"\n") + 1
        root = tmp_path / "torn"
        root.mkdir()
        (root / "journal.jsonl").write_bytes(data[: last_start + 5])
        Database(path=root, name="wal").close()
        healed = (root / "journal.jsonl").read_bytes()
        assert len(healed) == last_start
        for line in healed.decode("utf-8").splitlines():
            json.loads(line)  # every surviving line is complete JSON


class TestTornTailReporting:
    def test_torn_tail_emits_event_and_counter(self, tmp_path):
        data = _build_journal(tmp_path / "seed")
        root = tmp_path / "torn"
        root.mkdir()
        (root / "journal.jsonl").write_bytes(data[:-7])
        obs = Observability(name="walt")
        torn = obs.counter("metadb.wal.torn_tails")
        Database(path=root, name="wal", obs=obs).close()
        assert torn.value == 1
        events = [event for event in obs.events.snapshot(limit=50)
                  if event["kind"] == "wal.torn_tail"]
        assert len(events) == 1
        assert events[0]["severity"] == "warn"
        assert "torn byte" in events[0]["message"]

    def test_clean_journal_reports_nothing(self, tmp_path):
        _build_journal(tmp_path / "seed")
        obs = Observability(name="walc")
        torn = obs.counter("metadb.wal.torn_tails")
        Database(path=tmp_path / "seed", name="wal", obs=obs).close()
        assert torn.value == 0


class TestMissingNewline:
    def test_complete_record_without_newline_is_kept_and_repaired(self, tmp_path):
        data = _build_journal(tmp_path / "seed")
        root = tmp_path / "nonl"
        root.mkdir()
        assert data.endswith(b"\n")
        (root / "journal.jsonl").write_bytes(data[:-1])
        db = Database(path=root, name="wal")
        assert len(db.execute(Select("samples"))) == 3
        db.close()
        healed = (root / "journal.jsonl").read_bytes()
        assert healed.endswith(b"\n")
        assert len(healed) == len(data)


class TestReplicationOffsetRecovery:
    def test_acked_offset_survives_restart(self, tmp_path):
        db = Database(path=tmp_path / "f", name="follower")
        db.create_table(_schema())
        db.apply_redo([{"op": "insert", "table": "samples", "rowid": 1,
                        "row": {"id": 1, "note": "shipped", "payload": b"x"}}],
                      tx_id=7, lsn=11)
        db.close()
        recovered = Database(path=tmp_path / "f", name="follower")
        assert recovered.replication_offset == 11
        assert len(recovered.execute(Select("samples"))) == 1

    def test_acked_offset_survives_a_torn_tail_behind_it(self, tmp_path):
        """The ack is journaled in the same line as the applied batch, so
        a torn tail that discards the batch also discards its ack — the
        recovered offset never claims data the tables don't hold."""
        db = Database(path=tmp_path / "f", name="follower")
        db.create_table(_schema())
        db.apply_redo([{"op": "insert", "table": "samples", "rowid": 1,
                        "row": {"id": 1, "note": "a", "payload": b"x"}}],
                      lsn=1)
        db.apply_redo([{"op": "insert", "table": "samples", "rowid": 2,
                        "row": {"id": 2, "note": "b", "payload": b"y"}}],
                      lsn=2)
        db.close()
        journal = tmp_path / "f" / "journal.jsonl"
        data = journal.read_bytes()
        last_start = data.rstrip(b"\n").rfind(b"\n") + 1
        journal.write_bytes(data[: last_start + 9])  # tear the lsn=2 batch
        recovered = Database(path=tmp_path / "f", name="follower")
        assert recovered.replication_offset == 1
        assert len(recovered.execute(Select("samples"))) == 1
