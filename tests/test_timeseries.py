"""Retained telemetry: ring-buffer tiers, windowed queries, collector."""

import threading

import pytest

from repro.obs import (
    DEFAULT_TIERS,
    NO_DATA,
    Observability,
    TimeSeriesStore,
    sample_runtime,
    sparkline,
)


def obs_with_samples():
    obs = Observability(name="tsdb-test")
    return obs, obs.collector


class TestTimeSeriesStore:
    def test_delta_and_rate_over_window(self):
        store = TimeSeriesStore()
        for t, value in [(0.0, 0), (1.0, 10), (2.0, 30), (3.0, 60)]:
            store.record("hits", {}, "value", t, value)
        assert store.delta("hits", 2.0, now=3.0) == 50
        assert store.rate("hits", 2.0, now=3.0) == pytest.approx(25.0)

    def test_counter_born_inside_window_counts_fully(self):
        # A counter created mid-window accrued everything since birth —
        # its first sampled value is in-window growth, not baseline.
        store = TimeSeriesStore()
        store.record("errors", {}, "value", 10.0, 4)
        store.record("errors", {}, "value", 11.0, 6)
        assert store.delta("errors", 60.0, now=11.0) == 6
        # Once the window no longer reaches back to the birth, deltas
        # anchor normally.
        store.record("errors", {}, "value", 99.0, 9)
        store.record("errors", {}, "value", 100.0, 9)
        store.record("errors", {}, "value", 101.0, 9)
        assert store.delta("errors", 2.0, now=101.0) == 0

    def test_no_data_answers(self):
        store = TimeSeriesStore()
        assert store.delta("missing", 10.0) is NO_DATA
        assert store.rate("missing", 10.0) is NO_DATA
        assert store.latest("missing") is NO_DATA
        assert store.window_quantile("missing", 0.5, 10.0) is NO_DATA
        assert store.family_delta("missing", 10.0) is NO_DATA

    def test_tier_retention_and_coarse_fallback(self):
        store = TimeSeriesStore(tiers=((1.0, 5.0), (5.0, 50.0)))
        for t in range(0, 50):
            store.record("g", {}, "value", float(t), t)
        # A short window is answered from the fine tier at 1 s steps...
        fine = store.series("g", window_s=3.0, now=49.0)
        assert [t for t, _v in fine][-3:] == [47.0, 48.0, 49.0]
        # ...whose ring only holds the last ~5 s; a long window falls
        # back to the 5 s-resolution tier that still reaches back.
        coarse = store.series("g", window_s=40.0, now=49.0)
        spans = [b[0] - a[0] for a, b in zip(coarse, coarse[1:])]
        assert min(spans) >= 5.0
        assert coarse[0][0] <= 10.0

    def test_family_delta_sums_label_sets(self):
        store = TimeSeriesStore()
        for t in (0.0, 1.0):
            store.record("req", {"route": "/a"}, "value", t, 10 * t)
            store.record("req", {"route": "/b"}, "value", t, 4 * t)
        assert store.family_delta("req", 5.0, now=1.0) == 14
        assert store.family_delta(
            "req", 5.0, now=1.0, where=lambda labels: labels["route"] == "/a"
        ) == 10


class TestWindowedQuantiles:
    def test_windowed_quantile_sees_only_window_observations(self):
        obs, collector = obs_with_samples()
        # Old regime: fast (1 ms) observations before the window.
        for _ in range(50):
            obs.observe("lat_s", 0.001)
        collector.sample_once(now=0.0)
        collector.sample_once(now=100.0)
        # New regime: slow (100 ms) observations inside the window.
        for _ in range(50):
            obs.observe("lat_s", 0.1)
        collector.sample_once(now=101.0)
        store = collector.store
        cumulative = obs.registry.get("lat_s").quantile(0.5)
        windowed = store.window_quantile("lat_s", 0.5, 5.0, now=101.0)
        assert windowed == pytest.approx(0.1, rel=0.5)
        assert windowed > cumulative  # cumulative is dragged down by history
        # An empty window answers NO_DATA, never 0.0.
        assert store.window_quantile("lat_s", 0.5, 5.0, now=50.0) is NO_DATA

    def test_window_under_threshold_fractions(self):
        obs, collector = obs_with_samples()
        collector.sample_once(now=0.0)
        for _ in range(30):
            obs.observe("lat_s", 0.001)
        for _ in range(10):
            obs.observe("lat_s", 1.0)
        collector.sample_once(now=1.0)
        good, total = collector.store.window_under("lat_s", 0.01, 10.0, now=1.0)
        assert total == 40
        assert good == pytest.approx(30, abs=1)


class TestCollector:
    def test_sample_once_retains_registry_values(self):
        obs, collector = obs_with_samples()
        obs.count("c", 5)
        obs.set_gauge("g", 2.5)
        obs.observe("h", 0.25)
        collector.sample_once(now=1.0)
        store = collector.store
        assert store.latest("c") == 5
        assert store.latest("g") == 2.5
        assert store.latest("h", field="count") == 1
        assert collector.samples == 1

    def test_hot_path_never_writes_history(self):
        # The contract behind the <5% overhead guard: instrumented code
        # only touches the registry; history grows on collector ticks.
        obs, collector = obs_with_samples()
        collector.sample_once(now=0.0)
        before = len(collector.store)
        for _ in range(1000):
            obs.count("hot")
            obs.observe("hot_s", 0.001)
        assert len(collector.store) == before
        collector.sample_once(now=1.0)
        assert len(collector.store) > before

    def test_background_thread_lifecycle(self):
        obs, collector = obs_with_samples()
        obs.count("c")
        collector.start(interval_s=0.01)
        try:
            assert collector.running
            deadline = threading.Event()
            for _ in range(200):
                if collector.samples >= 3:
                    break
                deadline.wait(0.01)
            assert collector.samples >= 3
            # start() installed the calibration-seeded default SLOs.
            assert "browse-latency" in obs.slo.slos
            assert "browse-availability" in obs.slo.slos
        finally:
            collector.stop()
        assert not collector.running

    def test_custom_sampler_runs_each_tick(self):
        obs, collector = obs_with_samples()
        seen = []
        collector.add_sampler(seen.append)
        collector.sample_once(now=7.0)
        assert seen == [7.0]

    def test_runtime_gauges_sampled(self):
        obs, collector = obs_with_samples()
        collector.sample_once(now=0.0)
        report = sample_runtime(obs)
        assert report["threads"] >= 1
        assert report["uptime_s"] > 0
        assert "open_wal_handles" in report
        registry = obs.registry
        assert registry.value("process.threads") >= 1
        assert collector.store.latest("process.threads") is not NO_DATA

    def test_reset_drops_history(self):
        obs, collector = obs_with_samples()
        obs.count("c")
        collector.sample_once(now=0.0)
        assert len(collector.store) > 0
        obs.reset()
        assert len(collector.store) == 0
        assert collector.samples == 0

    def test_default_tiers_shape(self):
        assert DEFAULT_TIERS == ((1.0, 300.0), (15.0, 3600.0))


class TestSparkline:
    def test_renders_and_scales(self):
        line = sparkline([0, 1, 2, 3])
        assert len(line) == 4
        assert line[0] == "▁" and line[-1] == "█"

    def test_nan_and_empty(self):
        assert sparkline([]) == ""
        assert sparkline([float("nan")]) == " "
        assert " " in sparkline([1.0, float("nan"), 2.0])

    def test_resamples_to_width(self):
        assert len(sparkline(list(range(1000)), width=32)) == 32
