"""End-to-end durability: a persistent repository survives a restart.

The paper's durability setup (§2.3): redo logs on protected storage,
data files on disk.  Here: the metadata database journals every commit
(WAL) and the archives are plain files, so killing and reopening the
repository must lose nothing.
"""


from repro import Hedc
from repro.metadb import Comparison, Select
from repro.pl import Phase


class TestPersistentRepository:
    def test_full_state_survives_reopen(self, tmp_path):
        root = tmp_path / "hedc"
        first = Hedc.create(root, persistent=True)
        report = first.ingest_observation(duration_s=240.0, seed=17,
                                          unit_target_photons=10**6)
        alice = first.register_user("alice", "pw")
        event = first.events()[0]
        request = first.analyze(alice, event["hle_id"], "histogram", publish=True)
        assert request.phase is Phase.COMMITTED
        first.dm.io.default_database.close()

        # "Restart": a brand-new process would do exactly this.
        second = Hedc.create(root, persistent=True)
        # Accounts survive (password hash included).
        returning = second.login("alice", "pw")
        assert returning.login == "alice"
        # Events, catalogs and analyses survive.
        events = second.events()
        assert len(events) == len(report.hle_ids)
        assert len(second.catalog_events("standard")) == len(report.hle_ids)
        stored = second.dm.semantic.get_analysis(returning, request.ana_id)
        assert stored["algorithm"] == "histogram"
        # System catalogs were reused, not duplicated.
        catalogs = second.dm.io.execute(
            Select("catalogs", where=Comparison("name", "=", "standard"))
        )
        assert len(catalogs) == 1
        # The bulk data is still reachable through name mapping.
        unit = second.dm.io.execute(Select("raw_units"))[0]
        photons = second.dm.process.load_photons(unit["unit_id"])
        assert len(photons) == unit["n_photons"]

    def test_work_continues_after_reopen(self, tmp_path):
        root = tmp_path / "hedc"
        first = Hedc.create(root, persistent=True)
        first.ingest_observation(duration_s=240.0, seed=17, unit_target_photons=10**6)
        first.register_user("alice", "pw")
        n_events = len(first.events())
        first.dm.io.default_database.close()

        second = Hedc.create(root, persistent=True)
        alice = second.login("alice", "pw")
        # New analyses commit against recovered metadata + files.
        request = second.analyze(alice, second.events()[0]["hle_id"], "lightcurve")
        assert request.phase is Phase.COMMITTED, request.error
        # A new ingest appends without clobbering recovered ids.
        more = second.ingest_observation(duration_s=120.0, seed=77,
                                         unit_target_photons=10**6)
        assert len(second.events()) == n_events + len(more.hle_ids)

    def test_checkpoint_then_reopen(self, tmp_path):
        root = tmp_path / "hedc"
        first = Hedc.create(root, persistent=True)
        first.ingest_observation(duration_s=240.0, seed=17, unit_target_photons=10**6)
        first.dm.io.default_database.checkpoint()
        first.register_user("late", "pw")  # journalled after the snapshot
        first.dm.io.default_database.close()

        second = Hedc.create(root, persistent=True)
        assert second.login("late", "pw").login == "late"
        assert second.events()
