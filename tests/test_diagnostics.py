"""Deep diagnostics: event log, slow log, exemplars, profiler, usage.

Unit-level coverage for the ``repro.obs`` v2 surfaces; the end-to-end
scenario (browse + chaos → correlated diagnostics) lives in
``test_diagnostics_e2e.py``.
"""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.metadb import (
    Column,
    ColumnType,
    Comparison,
    Database,
    Insert,
    Select,
    TableSchema,
)
from repro.obs import (
    EventLog,
    Observability,
    SamplingProfiler,
    SlowLog,
    critical_path,
    span_self_times,
    to_line_protocol,
    trace_profile,
)
from repro.resil import CircuitBreaker, FaultInjector, breaker_report


# -- event log -----------------------------------------------------------------


class TestEventLog:
    def test_emit_and_filtered_read(self):
        log = EventLog()
        log.emit("info", "resil", "breaker.transition", "closed -> open",
                 breaker="pl.idl")
        log.emit("warn", "metadb", "wal.recovered", records_replayed=3)
        log.emit("error", "idl", "server.crashed", server="idl0")
        assert len(log) == 3
        assert [e.kind for e in log.records(component="idl")] == ["server.crashed"]
        warns = log.records(min_severity="warn")
        assert [e.severity for e in warns] == ["warn", "error"]
        assert log.find("wal.recovered")[0].fields["records_replayed"] == 3

    def test_ring_buffer_bounds_memory(self):
        log = EventLog(capacity=4)
        for index in range(10):
            log.emit("info", "test", "tick", index=index)
        assert len(log) == 4
        assert log.total_emitted == 10
        assert [e.fields["index"] for e in log.records()] == [6, 7, 8, 9]

    def test_sequence_is_monotonic_and_jsonl_parses(self):
        log = EventLog()
        log.emit("info", "a", "k1")
        log.emit("info", "a", "k2")
        lines = [json.loads(line) for line in log.to_jsonl().splitlines()]
        assert [line["seq"] for line in lines] == [1, 2]
        assert all("t_monotonic" in line for line in lines)

    def test_unknown_severity_rejected(self):
        with pytest.raises(ValueError):
            EventLog().emit("fatal", "a", "k")

    def test_disabled_log_drops_events(self):
        log = EventLog()
        log.enabled = False
        assert log.emit("info", "a", "k") is None
        assert len(log) == 0

    def test_concurrent_emitters_lose_no_events(self):
        log = EventLog(capacity=4096)
        barrier = threading.Barrier(4)

        def worker():
            barrier.wait()
            for _ in range(200):
                log.emit("info", "t", "tick")

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert log.total_emitted == 800
        assert len({event.seq for event in log.records()}) == 800

    def test_hub_event_correlates_to_current_span(self):
        obs = Observability(enabled=True)
        with obs.tracer.span("request") as span:
            obs.event("warn", "resil", "breaker.transition", breaker="b")
        event = obs.events.find("breaker.transition")[0]
        assert event.trace_id == span.trace_id
        assert event.span_id == span.span_id

    def test_hub_event_without_tracing_has_no_correlation(self):
        obs = Observability()
        obs.event("info", "dm", "cache_epoch.bumped", epoch=1)
        event = obs.events.records()[0]
        assert event.trace_id is None and event.span_id is None


# -- slow log ------------------------------------------------------------------


class TestSlowLog:
    def test_unconfigured_threshold_is_none(self):
        log = SlowLog()
        assert log.threshold_for("metadb.execute") is None
        assert not log.active

    def test_configure_record_and_remove(self):
        log = SlowLog()
        log.configure("metadb.execute", 0.01)
        assert log.threshold_for("metadb.execute") == 0.01
        log.record("metadb.execute", 0.05, 0.01, statement="SELECT ...",
                   plan={"access": "full_scan"})
        [op] = log.records("metadb.execute")
        assert op.duration_s == 0.05
        assert op.detail["plan"]["access"] == "full_scan"
        log.configure("metadb.execute", None)
        assert log.threshold_for("metadb.execute") is None

    def test_ring_bound_and_snapshot(self):
        log = SlowLog(capacity=3)
        for index in range(5):
            log.record("op", 0.1 + index, 0.05, index=index)
        snapshot = log.snapshot()
        assert len(snapshot) == 3
        assert log.total_recorded == 5
        assert snapshot[-1]["detail"]["index"] == 4

    def test_hub_slow_op_correlates_to_span(self):
        obs = Observability(enabled=True)
        with obs.tracer.span("request") as span:
            obs.slow_op("pl.run", 0.3, 0.1, algorithm="imaging")
        [op] = obs.slowlog.records()
        assert op.trace_id == span.trace_id
        assert op.detail["algorithm"] == "imaging"


# -- database slow log integration ---------------------------------------------


def _scan_db() -> Database:
    database = Database(obs=Observability())
    database.create_table(TableSchema(
        "t",
        [Column("a", ColumnType.INTEGER, nullable=False),
         Column("b", ColumnType.REAL, nullable=False)],
        primary_key="a",
    ))
    for index in range(50):
        database.execute(Insert("t", {"a": index, "b": float(index)}))
    return database


class TestDatabaseSlowLog:
    def test_slow_select_captures_plan_and_predicate(self):
        database = _scan_db()
        database.obs.slowlog.configure("metadb.execute", 0.0)  # everything is slow
        database.execute(Select("t", where=Comparison("b", ">=", 10.0)))
        ops = database.obs.slowlog.records("metadb.execute")
        assert ops, "select above threshold must be captured"
        detail = ops[-1].detail
        assert detail["op"] == "select"
        assert "SELECT" in detail["statement"].upper()
        assert "plan" in detail and "access" in detail["plan"]
        assert "predicate" in detail

    def test_fast_path_untouched_when_unconfigured(self):
        database = _scan_db()
        database.execute(Select("t"))
        assert len(database.obs.slowlog) == 0

    def test_mutations_capture_statement_without_plan(self):
        database = _scan_db()
        database.obs.slowlog.configure("metadb.execute", 0.0)
        database.execute(Insert("t", {"a": 999, "b": 1.0}))
        op = database.obs.slowlog.records("metadb.execute")[-1]
        assert op.detail["op"] == "insert"
        assert "plan" not in op.detail


# -- histogram exemplars -------------------------------------------------------


class TestExemplars:
    def test_max_value_exemplar_kept_per_bucket(self):
        obs = Observability()
        histogram = obs.histogram("lat_s", bounds=[0.1, 1.0])
        histogram.observe(0.02, exemplar=(11, 101))
        histogram.observe(0.07, exemplar=(22, 202))   # same bucket, larger
        histogram.observe(0.5, exemplar=(33, 303))    # next bucket
        histogram.observe(0.03)                       # no exemplar: slot kept
        slots = {slot["le"]: slot for slot in histogram.exemplars()}
        assert slots[0.1]["trace_id"] == 22
        assert slots[0.1]["value"] == 0.07
        assert slots[1.0]["span_id"] == 303

    def test_snapshot_includes_exemplars_and_reset_clears(self):
        obs = Observability()
        histogram = obs.histogram("lat_s")
        histogram.observe(0.2, exemplar=(1, 2))
        assert histogram.snapshot()["exemplars"]
        obs.registry.reset()
        assert histogram.exemplars() == []

    def test_hub_observe_attaches_current_span(self):
        obs = Observability(enabled=True)
        with obs.tracer.span("work") as span:
            obs.observe("work_s", 0.4)
        [slot] = obs.registry.get("work_s").exemplars()
        assert slot["trace_id"] == span.trace_id

    def test_timed_attaches_own_span(self):
        obs = Observability(enabled=True)
        with obs.timed("step_s") as timer:
            pass
        [slot] = obs.registry.get("step_s").exemplars()
        assert slot["span_id"] == timer.span.span_id

    def test_no_exemplars_when_tracing_disabled(self):
        obs = Observability()
        obs.observe("work_s", 0.4)
        assert obs.registry.get("work_s").exemplars() == []


# -- sampling profiler ---------------------------------------------------------


class TestSamplingProfiler:
    def test_default_off_owns_no_thread(self):
        profiler = SamplingProfiler()
        assert not profiler.running
        assert profiler.stop() == 0

    def test_samples_a_busy_thread_into_collapsed_stacks(self):
        profiler = SamplingProfiler(hz=200.0)
        stop = threading.Event()

        def busy_loop_for_profiler():
            while not stop.is_set():
                sum(range(500))

        thread = threading.Thread(target=busy_loop_for_profiler, daemon=True)
        thread.start()
        profiler.start()
        time.sleep(0.25)
        samples = profiler.stop()
        stop.set()
        thread.join()
        assert samples > 0
        collapsed = profiler.collapsed()
        assert collapsed, "expected at least one sampled stack"
        line = collapsed.splitlines()[0]
        stack, count = line.rsplit(" ", 1)
        assert int(count) >= 1
        assert ";" in stack or ":" in stack
        assert "busy_loop_for_profiler" in collapsed

    def test_double_start_is_noop_and_reset_clears(self):
        profiler = SamplingProfiler(hz=500.0)
        profiler.start()
        assert profiler.start() is profiler
        time.sleep(0.05)
        profiler.stop()
        profiler.reset()
        assert profiler.samples == 0
        assert profiler.collapsed() == ""

    def test_snapshot_shape(self):
        profiler = SamplingProfiler()
        snapshot = profiler.snapshot()
        assert snapshot["running"] is False
        assert snapshot["top_stacks"] == []


# -- trace-tree time analysis --------------------------------------------------


class TestTraceProfile:
    def _tree(self):
        obs = Observability(enabled=True)
        with obs.tracer.span("web.handle"):
            with obs.tracer.span("dm.query"):
                time.sleep(0.02)
            with obs.tracer.span("pl.run"):
                time.sleep(0.04)
        return obs.tracer.finished_spans()[0]

    def test_self_times_sum_to_root_duration(self):
        root = self._tree()
        rows = span_self_times(root)
        assert {row["name"] for row in rows} == {"web.handle", "dm.query", "pl.run"}
        total_self = sum(row["self_s"] for row in rows)
        assert total_self == pytest.approx(root.duration_s, rel=0.05)

    def test_critical_path_follows_longest_child(self):
        root = self._tree()
        names = [span.name for span in critical_path(root)]
        assert names == ["web.handle", "pl.run"]

    def test_trace_profile_is_json_ready(self):
        profile = trace_profile(self._tree())
        json.dumps(profile)
        assert profile["critical_path"][0]["name"] == "web.handle"


# -- breaker / fault-injection events ------------------------------------------


class TestResilEvents:
    def test_breaker_transitions_emit_events(self):
        obs = Observability()
        breaker = CircuitBreaker("b", window=4, min_calls=2, failure_rate=0.5,
                                 cooldown_s=0.0, obs=obs)
        breaker.record_failure()
        breaker.record_failure()       # trips
        assert breaker.state.value == "half_open"  # cooldown 0 -> probe window
        kinds = [(e.fields["from_state"], e.fields["to_state"])
                 for e in obs.events.find("breaker.transition")]
        assert ("closed", "open") in kinds
        assert ("open", "half_open") in kinds
        open_event = obs.events.find("breaker.transition")[0]
        assert open_event.severity == "warn"

    def test_breaker_report_filters_by_hub(self):
        obs_a, obs_b = Observability(), Observability()
        breaker_a = CircuitBreaker("only.a", obs=obs_a)
        CircuitBreaker("only.b", obs=obs_b)
        report = breaker_report(obs_a)
        assert set(report) == {"only.a"}
        assert report["only.a"]["state"] == "closed"
        assert report["only.a"]["window"] == {
            "calls": 0, "failures": 0, "capacity": breaker_a.window,
        }

    def test_fault_firing_emits_event_and_report_describes_points(self):
        obs = Observability()
        injector = FaultInjector(seed=3, obs=obs)
        injector.inject("metadb.statement", rate=1.0, error=None,
                        delay_s=0.0, times=2)
        injector.fire("metadb.statement")
        [event] = obs.events.find("fault.fired")
        assert event.fields["point"] == "metadb.statement"
        report = injector.report()
        assert report["metadb.statement"]["fired"] == 1
        assert report["metadb.statement"]["times"] == 2
        assert report["metadb.statement"]["error"] is None

    def test_wal_recovery_emits_event(self, tmp_path):
        obs = Observability()
        database = Database(tmp_path / "db", obs=obs)
        database.create_table(TableSchema(
            "t", [Column("a", ColumnType.INTEGER, nullable=False)],
            primary_key="a",
        ))
        database.execute(Insert("t", {"a": 1}))
        database.close()
        reopened_obs = Observability()
        reopened = Database(tmp_path / "db", obs=reopened_obs)
        assert reopened.execute(Select("t")) == [{"a": 1}]
        [event] = reopened_obs.events.find("wal.recovered")
        assert event.fields["records_replayed"] >= 1
        reopened.close()


# -- line-protocol escaping (regression) ---------------------------------------


class TestLineProtocolEscaping:
    def test_label_values_with_structural_characters(self):
        obs = Observability()
        obs.count("web.responses", route='/a b,c="d"')
        text = to_line_protocol(obs.registry)
        assert 'route=/a\\ b\\,c\\=\\"d\\"' in text
        # One metric -> exactly one line.
        assert len(text.strip().splitlines()) == 1

    def test_backslash_doubles_before_other_escapes(self):
        obs = Observability()
        obs.count("m", path="C:\\data files")
        text = to_line_protocol(obs.registry)
        assert "C:\\\\data\\ files" in text

    def test_newline_flattened_to_escaped_space(self):
        obs = Observability()
        obs.count("m", msg="two\nlines")
        text = to_line_protocol(obs.registry)
        assert len(text.strip().splitlines()) == 1
        assert "two\\ lines" in text


# -- hub wiring ----------------------------------------------------------------


class TestHubDiagnostics:
    def test_every_hub_owns_the_diagnostic_trio(self):
        obs = Observability()
        assert obs.events is not None
        assert obs.slowlog is not None
        assert not obs.profiler.running

    def test_reset_clears_diagnostics(self):
        obs = Observability()
        obs.event("info", "a", "k")
        obs.slowlog.record("op", 0.2, 0.1)
        obs.reset()
        assert len(obs.events) == 0
        assert len(obs.slowlog) == 0
