"""Tests for the calibrated performance models: the *shapes* of
Figures 4-5 and Table 1 must match the paper."""

import pytest

from repro.evalmodel import (
    HISTOGRAM,
    HISTOGRAM_CONFIGS,
    IMAGING,
    IMAGING_CONFIGS,
    figure4_series,
    figure5_series,
    print_figure4,
    print_figure5,
    print_table1,
    simulate_browsing,
    simulate_processing,
    table1_histogram,
    table1_imaging,
)


@pytest.fixture(scope="module")
def fig4():
    return figure4_series()


@pytest.fixture(scope="module")
def fig5():
    return figure5_series()


@pytest.fixture(scope="module")
def imaging_rows():
    return table1_imaging()


@pytest.fixture(scope="module")
def histogram_rows():
    return table1_histogram()


class TestFigure4:
    def test_peak_at_16_clients(self, fig4):
        """~16 clients saturate a single web server (paper §7.3)."""
        peak = fig4[0]
        assert peak.n_clients == 16
        assert 14.0 <= peak.throughput_rps <= 18.0
        # The peak is DB-bound: ~120 queries/s.
        assert peak.db_queries_per_s == pytest.approx(120.0, rel=0.1)

    def test_throughput_degrades_monotonically(self, fig4):
        throughputs = [result.throughput_rps for result in fig4]
        assert throughputs == sorted(throughputs, reverse=True)

    def test_96_clients_drop_to_about_3(self, fig4):
        """"the overall throughput drops to around 3 requests per second
        at 96 clients" (§7.3)."""
        assert fig4[-1].n_clients == 96
        assert 2.4 <= fig4[-1].throughput_rps <= 3.6

    def test_degradation_caused_by_app_logic_not_db(self, fig4):
        """§7.3: "the database is not the reason for the slowdown"."""
        overloaded = fig4[-1]
        assert overloaded.middle_tier_utilization > 0.9
        assert overloaded.db_utilization < 0.5

    def test_response_time_grows_with_clients(self, fig4):
        responses = [result.avg_response_s for result in fig4]
        assert responses == sorted(responses)

    def test_printer_emits_all_rows(self, fig4):
        text = print_figure4(fig4)
        for result in fig4:
            assert str(result.n_clients) in text


class TestFigure5:
    def test_scaling_from_3_to_ceiling(self, fig5):
        """§7.3: 3 req/s at one node rising to ~18 at five nodes."""
        assert fig5[0].n_middle_tier == 1
        assert 2.4 <= fig5[0].throughput_rps <= 3.6
        assert fig5[-1].n_middle_tier == 5
        assert 15.5 <= fig5[-1].throughput_rps <= 19.0

    def test_throughput_monotone_in_nodes(self, fig5):
        throughputs = [result.throughput_rps for result in fig5]
        assert throughputs == sorted(throughputs)

    def test_five_nodes_hit_db_peak(self, fig5):
        """"These 18 requests result in around 120 HEDC database queries,
        the peak performance of the database" (§7.3)."""
        assert fig5[-1].db_queries_per_s == pytest.approx(120.0, rel=0.08)
        assert fig5[-1].db_utilization > 0.9

    def test_two_nodes_roughly_quadruple_one(self, fig5):
        # Adding a node relieves per-node session load superlinearly.
        assert fig5[1].throughput_rps > 2.5 * fig5[0].throughput_rps

    def test_printer(self, fig5):
        assert "Figure 5" in print_figure5(fig5)


_PAPER_IMAGING = {"S/1": 6027.0, "S/2": 3117.0, "C/1": 2059.0, "S+C/2+1": 1380.0}
_PAPER_HISTOGRAM = {
    "S/1": 960.0, "S/2": 655.0, "C/1": 841.0, "C/cached/1": 821.0, "S+C/2+1": 438.0,
}


def _by_key(rows):
    return {f"{row.label}/{row.concurrency}": row for row in rows}


class TestTable1Imaging:
    def test_durations_within_15_percent_of_paper(self, imaging_rows):
        rows = _by_key(imaging_rows)
        for key, paper_value in _PAPER_IMAGING.items():
            assert rows[key].overall_duration_s == pytest.approx(paper_value, rel=0.15), key

    def test_config_ordering_matches_paper(self, imaging_rows):
        rows = _by_key(imaging_rows)
        assert (
            rows["S/1"].overall_duration_s
            > rows["S/2"].overall_duration_s
            > rows["C/1"].overall_duration_s
            > rows["S+C/2+1"].overall_duration_s
        )

    def test_turnover_inverse_of_duration(self, imaging_rows):
        rows = _by_key(imaging_rows)
        assert rows["S+C/2+1"].turnover_gb_per_day > 4 * rows["S/1"].turnover_gb_per_day

    def test_single_server_uses_half_the_cpus(self, imaging_rows):
        """Table 1: S/1 shows ~50% usr CPU on the 2-CPU server."""
        rows = _by_key(imaging_rows)
        assert rows["S/1"].usr_cpu_server_pct == pytest.approx(50.0, abs=5.0)
        assert rows["S/2"].usr_cpu_server_pct > 90.0

    def test_client_cpu_saturated_for_imaging(self, imaging_rows):
        """§8.4: long CPU-bound analyses keep the client CPU busy."""
        rows = _by_key(imaging_rows)
        assert rows["C/1"].usr_cpu_client_pct > 80.0

    def test_accounting_matches_table2(self, imaging_rows):
        for row in imaging_rows:
            assert row.queries == 300
            assert row.edits == 200


class TestTable1Histogram:
    def test_durations_within_15_percent_of_paper(self, histogram_rows):
        rows = _by_key(histogram_rows)
        for key, paper_value in _PAPER_HISTOGRAM.items():
            assert rows[key].overall_duration_s == pytest.approx(paper_value, rel=0.15), key

    def test_config_ordering_matches_paper(self, histogram_rows):
        """S1 > C > C/cached > S2 > S+C (Table 1 right)."""
        rows = _by_key(histogram_rows)
        assert rows["S/1"].overall_duration_s > rows["C/1"].overall_duration_s
        assert rows["C/1"].overall_duration_s >= rows["C/cached/1"].overall_duration_s
        assert rows["C/cached/1"].overall_duration_s > rows["S/2"].overall_duration_s
        assert rows["S/2"].overall_duration_s > rows["S+C/2+1"].overall_duration_s

    def test_caching_saves_little(self, histogram_rows):
        """§8.3: "even for the data intensive histogram test, the cost of
        data movement are relatively small"."""
        rows = _by_key(histogram_rows)
        saving = 1.0 - rows["C/cached/1"].overall_duration_s / rows["C/1"].overall_duration_s
        assert 0.0 <= saving < 0.10

    def test_client_cpu_not_saturated_for_short_analyses(self, histogram_rows):
        """§8.4: "jobs are not scheduled timely to available resources
        (Table 1, right: the client CPU is not saturated)"."""
        rows = _by_key(histogram_rows)
        assert rows["C/1"].usr_cpu_client_pct < 60.0
        assert rows["S+C/2+1"].usr_cpu_client_pct < 60.0

    def test_sojourn_smallest_for_combined_config(self, histogram_rows):
        rows = _by_key(histogram_rows)
        assert rows["S+C/2+1"].avg_sojourn_s == min(
            row.avg_sojourn_s for row in histogram_rows
        )

    def test_accounting_matches_table3(self, histogram_rows):
        for row in histogram_rows:
            assert row.queries == 450
            assert row.edits == 300

    def test_printer(self, histogram_rows):
        text = print_table1(histogram_rows)
        assert "histogram" in text and "C/cached" in text


class TestModelInvariants:
    def test_invalid_configurations_rejected(self):
        with pytest.raises(ValueError):
            simulate_browsing(0)
        from repro.evalmodel import Configuration

        with pytest.raises(ValueError):
            simulate_processing(IMAGING, Configuration("none", 0, 0))

    def test_browsing_deterministic(self):
        a = simulate_browsing(32, duration_s=150.0)
        b = simulate_browsing(32, duration_s=150.0)
        assert a.throughput_rps == b.throughput_rps

    def test_all_configs_complete_all_requests(self, imaging_rows, histogram_rows):
        for row in imaging_rows:
            assert row.overall_duration_s > 0
        for row in histogram_rows:
            assert row.overall_duration_s > 0
