"""Unit tests for repro.resil: policies, breaker, deadline, bulkhead,
fault injection, and the wired-in degradation paths."""

import contextvars
import threading

import pytest

from repro.filestore import ChecksumError, DiskArchive, StorageManager
from repro.metadb import Database, ReplicatedDatabase, Select
from repro.pl import IdlServerManager, NoServerAvailable
from repro.resil import (
    BreakerOpen,
    BreakerState,
    Bulkhead,
    BulkheadFull,
    CircuitBreaker,
    ConnectionDropped,
    Deadline,
    DeadlineExceeded,
    FaultInjector,
    InjectedFault,
    RetryPolicy,
    resilient,
    use_injector,
)
from repro.schema import install_all


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestRetryPolicy:
    def test_schedule_is_deterministic_per_seed(self):
        a = RetryPolicy(max_attempts=5, base_delay_s=0.01, seed=42)
        b = RetryPolicy(max_attempts=5, base_delay_s=0.01, seed=42)
        c = RetryPolicy(max_attempts=5, base_delay_s=0.01, seed=43)
        assert a.schedule() == b.schedule()
        assert a.schedule() != c.schedule()

    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(max_attempts=10, base_delay_s=0.01, multiplier=2.0,
                             max_delay_s=0.04, jitter=0.0)
        assert policy.schedule() == [0.01, 0.02, 0.04, 0.04, 0.04,
                                     0.04, 0.04, 0.04, 0.04]

    def test_retries_then_succeeds(self):
        sleeps = []
        policy = RetryPolicy(max_attempts=3, base_delay_s=0.01, jitter=0.0,
                             sleep=sleeps.append)
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise TimeoutError("transient")
            return "done"

        assert policy.call(flaky) == "done"
        assert calls["n"] == 3
        assert sleeps == [0.01, 0.02]

    def test_exhaustion_reraises_last_error(self):
        policy = RetryPolicy(max_attempts=2, base_delay_s=0.0, jitter=0.0)

        def always_fails():
            raise TimeoutError("still down")

        with pytest.raises(TimeoutError):
            policy.call(always_fails)

    def test_non_retryable_raises_immediately(self):
        policy = RetryPolicy(max_attempts=5, base_delay_s=0.0)
        calls = {"n": 0}

        def bad_input():
            calls["n"] += 1
            raise ValueError("not transient")

        with pytest.raises(ValueError):
            policy.call(bad_input)
        assert calls["n"] == 1

    def test_fatal_wins_over_retryable(self):
        class Both(TimeoutError):
            pass

        policy = RetryPolicy(max_attempts=5, base_delay_s=0.0,
                             retryable=(TimeoutError,), fatal=(Both,))
        assert policy.classify(TimeoutError()) is True
        assert policy.classify(Both()) is False

    def test_never_sleeps_past_ambient_deadline(self):
        clock = FakeClock()
        policy = RetryPolicy(max_attempts=5, base_delay_s=10.0, jitter=0.0)
        calls = {"n": 0}

        def failing():
            calls["n"] += 1
            raise TimeoutError("down")

        with Deadline(1.0, clock=clock):
            with pytest.raises(TimeoutError):
                policy.call(failing)
        # The first backoff (10s) would outlive the 1s budget: no retry.
        assert calls["n"] == 1


class TestCircuitBreaker:
    def make(self, clock):
        return CircuitBreaker("t", window=10, min_calls=4, failure_rate=0.5,
                              cooldown_s=5.0, clock=clock)

    def test_full_transition_cycle(self):
        clock = FakeClock()
        breaker = self.make(clock)
        assert breaker.state is BreakerState.CLOSED
        for _ in range(4):
            breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        assert not breaker.allow()
        with pytest.raises(BreakerOpen) as excinfo:
            breaker.check()
        assert excinfo.value.retry_after_s > 0
        clock.advance(5.0)
        assert breaker.state is BreakerState.HALF_OPEN
        assert breaker.allow()  # the single probe
        assert not breaker.allow()  # second caller is still rejected
        breaker.record_success()
        assert breaker.state is BreakerState.CLOSED

    def test_half_open_probe_failure_reopens(self):
        clock = FakeClock()
        breaker = self.make(clock)
        for _ in range(4):
            breaker.record_failure()
        clock.advance(5.0)
        assert breaker.state is BreakerState.HALF_OPEN
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        assert breaker.trips == 2

    def test_below_min_calls_never_trips(self):
        breaker = self.make(FakeClock())
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED

    def test_mixed_outcomes_respect_rate(self):
        breaker = self.make(FakeClock())
        for _ in range(6):
            breaker.record_success()
        for _ in range(4):
            breaker.record_failure()
        # 4 failures / 10 outcomes = 0.4 < 0.5 threshold.
        assert breaker.state is BreakerState.CLOSED
        breaker.record_failure()  # window slides: 5/10
        assert breaker.state is BreakerState.OPEN

    def test_call_records_outcomes(self):
        clock = FakeClock()
        breaker = self.make(clock)

        def boom():
            raise TimeoutError("down")

        for _ in range(4):
            with pytest.raises(TimeoutError):
                breaker.call(boom)
        with pytest.raises(BreakerOpen):
            breaker.call(lambda: "never runs")


class TestDeadline:
    def test_expiry_and_check(self):
        clock = FakeClock()
        deadline = Deadline(2.0, clock=clock)
        assert not deadline.expired
        assert deadline.remaining() == pytest.approx(2.0)
        clock.advance(1.0)
        assert deadline.fraction_remaining() == pytest.approx(0.5)
        clock.advance(1.5)
        assert deadline.expired
        with pytest.raises(DeadlineExceeded):
            deadline.check("unit test")

    def test_context_install_and_clear(self):
        assert Deadline.current() is None
        with Deadline(5.0) as deadline:
            assert Deadline.current() is deadline
            with Deadline(1.0) as inner:
                assert Deadline.current() is inner
            assert Deadline.current() is deadline
        assert Deadline.current() is None

    def test_check_current_is_noop_without_deadline(self):
        Deadline.check_current("anywhere")  # must not raise

    def test_propagates_across_threads_via_copy_context(self):
        clock = FakeClock()
        seen = {}
        with Deadline(3.0, clock=clock):
            ctx = contextvars.copy_context()

            def worker():
                seen["deadline"] = ctx.run(Deadline.current)

            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert seen["deadline"] is not None
        assert seen["deadline"].budget_s == 3.0


class TestBulkhead:
    def test_caps_concurrency_and_sheds(self):
        bulkhead = Bulkhead("t", max_concurrent=2)
        bulkhead.acquire()
        bulkhead.acquire()
        with pytest.raises(BulkheadFull):
            bulkhead.acquire()
        bulkhead.release()
        bulkhead.acquire()  # a freed slot is reusable
        bulkhead.release()
        bulkhead.release()
        assert bulkhead.in_use == 0

    def test_context_manager_releases_on_error(self):
        bulkhead = Bulkhead("t", max_concurrent=1)
        with pytest.raises(ValueError):
            with bulkhead:
                raise ValueError("boom")
        assert bulkhead.in_use == 0


class TestFaultInjector:
    def test_same_seed_same_firing_pattern(self):
        def pattern(seed):
            injector = FaultInjector(seed=seed)
            injector.inject("p", rate=0.3)
            fired = []
            for _ in range(50):
                try:
                    injector.fire("p")
                    fired.append(False)
                except InjectedFault:
                    fired.append(True)
            return fired

        assert pattern(11) == pattern(11)
        assert pattern(11) != pattern(12)

    def test_unconfigured_points_do_not_consume_rng(self):
        a = FaultInjector(seed=9)
        a.inject("p", rate=0.5)
        b = FaultInjector(seed=9)
        b.inject("p", rate=0.5)
        outcomes_a, outcomes_b = [], []
        for _ in range(20):
            a.fire("unarmed")  # must not perturb the armed point's draws
            outcomes_a.append(self._fires(a, "p"))
            outcomes_b.append(self._fires(b, "p"))
        assert outcomes_a == outcomes_b

    @staticmethod
    def _fires(injector, name):
        try:
            injector.fire(name)
            return False
        except InjectedFault:
            return True

    def test_times_bounds_firings(self):
        injector = FaultInjector()
        injector.inject("p", rate=1.0, times=2)
        assert self._fires(injector, "p")
        assert self._fires(injector, "p")
        assert not self._fires(injector, "p")
        assert injector.point("p").fired == 2

    def test_corrupt_flips_exactly_one_byte(self):
        injector = FaultInjector(seed=3)
        injector.inject("c", rate=1.0, corrupt=True, error=None)
        payload = bytes(range(64))
        corrupted = injector.corrupt_payload("c", payload)
        assert corrupted != payload
        assert len(corrupted) == len(payload)
        assert sum(1 for x, y in zip(payload, corrupted) if x != y) == 1

    def test_clear_disarms(self):
        injector = FaultInjector()
        injector.inject("p")
        injector.clear("p")
        injector.fire("p")  # must not raise
        assert not injector.active

    def test_custom_error_type(self):
        injector = FaultInjector()
        injector.inject("p", error=ConnectionDropped)
        with pytest.raises(ConnectionDropped):
            injector.fire("p")


class TestResilientWrapper:
    def test_composes_retry_and_breaker(self):
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 2:
                raise TimeoutError("transient")
            return 42

        wrapped = resilient(
            flaky,
            retry=RetryPolicy(max_attempts=3, base_delay_s=0.0, jitter=0.0),
            breaker=CircuitBreaker("w", window=4, min_calls=2),
        )
        assert wrapped() == 42
        assert wrapped.policies["retry"].max_attempts == 3

    def test_bare_wrapper_checks_deadline(self):
        clock = FakeClock()

        @resilient
        def work():
            return "ok"

        assert work() == "ok"
        with Deadline(1.0, clock=clock):
            clock.advance(2.0)
            with pytest.raises(DeadlineExceeded):
                work()

    def test_bulkhead_sheds_through_wrapper(self):
        bulkhead = Bulkhead("w", max_concurrent=1)
        wrapped = resilient(lambda: "ok", bulkhead=bulkhead)
        bulkhead.acquire()  # simulate a concurrent holder
        with pytest.raises(BulkheadFull):
            wrapped()
        bulkhead.release()
        assert wrapped() == "ok"


class TestChecksumVerification:
    def test_corrupted_read_raises_checksum_error(self, tmp_path):
        manager = StorageManager()
        manager.register(DiskArchive("a", tmp_path / "a"))
        item = manager.place("data/x", b"precious bits")
        assert manager.retrieve("a", "data/x") == b"precious bits"
        # Corrupt the on-disk copy behind the manager's back.
        path = manager.archive("a").local_path("data/x")
        path.write_bytes(b"Precious bits")
        with pytest.raises(ChecksumError, match="checksum mismatch"):
            manager.retrieve("a", "data/x")
        assert manager.verify_recorded() == [("a", "data/x")]
        assert item.checksum

    def test_migrate_refuses_corrupt_source(self, tmp_path):
        manager = StorageManager()
        manager.register(DiskArchive("a", tmp_path / "a"))
        manager.register(DiskArchive("b", tmp_path / "b"))
        manager.place("x", b"payload", prefer="a")
        manager.archive("a").local_path("x").write_bytes(b"Payload")
        with pytest.raises(ChecksumError):
            manager.migrate("x", "a", "b")
        assert not manager.archive("b").exists("x")

    def test_migrate_moves_checksum_record(self, tmp_path):
        manager = StorageManager()
        manager.register(DiskArchive("a", tmp_path / "a"))
        manager.register(DiskArchive("b", tmp_path / "b"))
        manager.place("x", b"payload", prefer="a")
        manager.migrate("x", "a", "b")
        assert manager.retrieve("b", "x") == b"payload"
        # The destination copy is now the verified one.
        manager.archive("b").local_path("x").write_bytes(b"Payload")
        with pytest.raises(ChecksumError):
            manager.retrieve("b", "x")


class TestManagerRetryPolicy:
    def test_restart_budget_bounds_a_crash_storm(self):
        def always_crash():
            raise OSError("dead interpreter")

        manager = IdlServerManager("node", n_servers=1, fault_hook=always_crash)
        manager.start_all()
        with pytest.raises(NoServerAvailable):
            # Far more retries than the restart budget (2 * n_servers)
            # allows: the manager surfaces the drained pool instead of
            # spinning forever.
            manager.invoke("1 + 1", retries=50)
        assert manager.recoveries <= max(2, 2 * manager.n_servers)

    def test_default_retries_still_return_failed_result(self):
        def always_crash():
            raise OSError("dead interpreter")

        manager = IdlServerManager("node", n_servers=1, fault_hook=always_crash)
        manager.start_all()
        result = manager.invoke("1 + 1", retries=1)
        assert not result.ok


class TestReplicatedFailover:
    def make_replicated(self, **kwargs):
        primary = Database(name="p")
        install_all(primary)
        replicated = ReplicatedDatabase(primary, **kwargs)
        replicated.add_replica()
        return replicated

    def test_partitioned_replica_fails_over_to_primary(self):
        replicated = self.make_replicated()
        injector = FaultInjector(seed=1)
        injector.inject("metadb.replica.p-r1", rate=1.0)
        with use_injector(injector):
            for _ in range(6):
                assert replicated.execute(Select("hle")) == []
        # Every read landed on the healthy primary.
        assert replicated.reads_by_copy["p"] == 6
        assert replicated.reads_by_copy["p-r1"] == 0
        assert replicated.breakers["p-r1"].state is BreakerState.OPEN

    def test_all_copies_partitioned_raises_and_recovers(self):
        replicated = self.make_replicated(breaker_cooldown_s=0.0)
        injector = FaultInjector(seed=1)
        injector.inject("metadb.replica.p", rate=1.0)
        injector.inject("metadb.replica.p-r1", rate=1.0)
        with use_injector(injector):
            for _ in range(8):
                with pytest.raises(InjectedFault):
                    replicated.execute(Select("hle"))
        # Partition healed: with zero cooldown the breakers half-open and
        # the first successful probes close them again.
        for _ in range(4):
            assert replicated.execute(Select("hle")) == []
        assert all(b.state is BreakerState.CLOSED
                   for b in replicated.breakers.values())

    def test_writes_unaffected_by_replica_partition(self):
        replicated = self.make_replicated()
        injector = FaultInjector(seed=1)
        injector.inject("metadb.replica.p-r1", rate=1.0)
        with use_injector(injector):
            replicated.execute(
                "INSERT INTO ops_log (log_id, level, component, message) "
                "VALUES (900, 'info', 'chaos', 'write during partition')"
            )
        assert replicated.verify_consistency()
