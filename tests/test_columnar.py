"""Columnar segments and the vectorized executor.

The load-bearing property is *differential equivalence*: with
``HEDC_COLUMNAR`` toggled and nothing else changed, every query must
return byte-identical rows, order and aggregates — the columnar copy is
an access path, never a semantics change.  The suite drives randomized
predicates over a seeded schema (single-node and sharded), the NULL and
LIKE edge cases that bit the row path historically, zone-map pruning,
epoch-based rebuild after mutations, and the bulk-delete statistics
regression.
"""

from __future__ import annotations

import os
import random
from contextlib import contextmanager

import pytest

from repro.metadb import (
    Aggregate,
    And,
    Between,
    Column,
    ColumnType,
    Comparison,
    Database,
    Delete,
    In,
    Insert,
    IsNull,
    Like,
    Not,
    Or,
    Select,
    TableSchema,
    Update,
)
from repro.metadb.columnar import SEGMENT_ROWS
from repro.metadb.query import COLUMNAR_MIN_ROWS

N_ROWS = SEGMENT_ROWS + 2000  # two segments, second partial
KINDS = ["flare", "quiet", "storm", "abc\n", "ab%c"]


@contextmanager
def columnar_disabled():
    """Flip the kill-switch for the duration of a with-block."""
    previous = os.environ.get("HEDC_COLUMNAR")
    os.environ["HEDC_COLUMNAR"] = "0"
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop("HEDC_COLUMNAR", None)
        else:
            os.environ["HEDC_COLUMNAR"] = previous


def events_schema(columnar: bool = True) -> TableSchema:
    return TableSchema(
        "ev",
        [
            Column("id", ColumnType.INTEGER, nullable=False),
            Column("kind", ColumnType.TEXT),          # low-card -> dictionary
            Column("comment", ColumnType.TEXT),       # high-card -> object
            Column("val", ColumnType.REAL),
            Column("n", ColumnType.INTEGER),
            Column("flag", ColumnType.BOOLEAN),
            Column("at", ColumnType.TIMESTAMP),
        ],
        primary_key="id",
        indexes=[("val",), ("kind",)],
        columnar=columnar,
    )


def seed_rows(n: int = N_ROWS, seed: int = 11) -> list[dict]:
    """Deterministic rows: dyadic rationals for REAL (so vectorized and
    sequential summation agree bit for bit) and NULLs in every column."""
    rng = random.Random(seed)
    rows = []
    for i in range(n):
        rows.append({
            "id": i,
            "kind": rng.choice(KINDS) if rng.random() > 0.1 else None,
            "comment": f"note-{rng.randrange(10_000)}" if rng.random() > 0.1 else None,
            "val": rng.randint(0, 4000) / 4 if rng.random() > 0.1 else None,
            "n": rng.randint(0, 100) if rng.random() > 0.05 else None,
            "flag": rng.random() > 0.5 if rng.random() > 0.1 else None,
            "at": float(rng.randrange(0, 1_000_000)) if rng.random() > 0.1 else None,
        })
    return rows


@pytest.fixture(scope="module")
def big_db() -> Database:
    db = Database(name="colm")
    db.create_table(events_schema())
    for row in seed_rows():
        db.execute(Insert("ev", row))
    return db


def both_paths(db: Database, select: Select):
    """(columnar_result, row_result) for the same statement."""
    vectorized = db.execute(select)
    with columnar_disabled():
        assert db.explain_plan(select)["access"] != "columnar_scan"
        row = db.execute(select)
    return vectorized, row


def multiset(rows) -> list[str]:
    return sorted(repr(sorted(row.items())) for row in rows)


def assert_equivalent(db: Database, select: Select) -> None:
    """Columnar ≡ row path: exact (order included) under ORDER BY, as
    multisets otherwise — unordered output order is unspecified and the
    row path may legally stream from an index in key order."""
    vectorized, row = both_paths(db, select)
    if select.order_by or select.aggregates:
        assert vectorized == row
    else:
        assert multiset(vectorized) == multiset(row)


def random_predicate(rng: random.Random, depth: int = 0):
    choices = ["cmp", "between", "in", "like", "isnull"]
    if depth < 2:
        choices += ["and", "or", "not"]
    pick = rng.choice(choices)
    if pick == "cmp":
        column, value = rng.choice([
            ("kind", rng.choice(KINDS + ["zzz", "abc"])),
            ("comment", f"note-{rng.randrange(10_000)}"),
            ("val", rng.randint(0, 4000) / 4),
            ("n", rng.randint(0, 100)),
            ("flag", rng.random() > 0.5),
            ("at", float(rng.randrange(0, 1_000_000))),
            ("id", rng.randrange(N_ROWS)),
        ])
        return Comparison(column, rng.choice(["=", "!=", "<", "<=", ">", ">="]), value)
    if pick == "between":
        low = rng.randint(0, 3000) / 4
        return Between("val", low, low + rng.randint(0, 2000) / 4)
    if pick == "in":
        return In("kind", rng.sample(KINDS + ["zzz"], rng.randint(1, 3)))
    if pick == "like":
        column = rng.choice(["kind", "comment"])
        pattern = rng.choice(["fla%", "%c", "abc_", "abc%", "%o%", "note-1%", "q__et"])
        return Like(column, pattern)
    if pick == "isnull":
        return IsNull(rng.choice(["kind", "val", "n", "flag"]),
                      negated=rng.random() > 0.5)
    if pick == "not":
        return Not(random_predicate(rng, depth + 1))
    parts = [random_predicate(rng, depth + 1) for _ in range(rng.randint(1, 3))]
    return And(parts) if pick == "and" else Or(parts)


class TestPlanChoice:
    def test_full_sweep_takes_columnar_scan(self, big_db):
        plan = big_db.explain_plan(Select("ev", where=Comparison("n", ">=", 0)))
        assert plan["access"] == "columnar_scan"
        assert plan["segments_total"] == 2
        assert "COLUMNAR SCAN" in plan["description"]

    def test_selective_index_still_wins(self, big_db):
        plan = big_db.explain_plan(Select("ev", where=Comparison("id", "=", 17)))
        assert plan["access"] == "pk_probe"
        plan = big_db.explain_plan(
            Select("ev", where=Between("val", 10.0, 10.5))
        )
        assert plan["access"] == "range_scan"

    def test_kill_switch_disables_columnar(self, big_db):
        select = Select("ev", where=Comparison("n", ">=", 0))
        with columnar_disabled():
            assert big_db.explain_plan(select)["access"] == "full_scan"
        assert big_db.explain_plan(select)["access"] == "columnar_scan"

    def test_small_tables_stay_row_oriented(self):
        db = Database(name="small")
        db.create_table(events_schema())
        for row in seed_rows(COLUMNAR_MIN_ROWS - 1, seed=3):
            db.execute(Insert("ev", row))
        plan = db.explain_plan(Select("ev", where=Comparison("n", ">", 5)))
        assert plan["access"] == "full_scan"

    def test_bounded_ordered_fallback_beats_columnar(self, big_db):
        plan = big_db.explain_plan(
            Select("ev", order_by=[("val", "asc")], limit=5)
        )
        assert plan["access"] == "range_scan"
        assert plan["ordered"] is True

    def test_zone_maps_prune_segments(self, big_db):
        # id is insertion-ordered, so the first segment's zone map
        # excludes predicates anchored past SEGMENT_ROWS.
        plan = big_db.explain_plan(
            Select("ev", where=Comparison("id", ">", SEGMENT_ROWS + 100))
        )
        assert plan["access"] == "columnar_scan"
        assert plan["segments_pruned"] == 1
        rows, expected = both_paths(
            big_db, Select("ev", where=Comparison("id", ">", SEGMENT_ROWS + 100))
        )
        assert rows == expected

    def test_access_path_and_columnar_counters(self, big_db):
        big_db.execute(Select("ev", where=Comparison("n", ">=", 0)))
        counter = big_db.obs.counter(
            "metadb.access_path", db=big_db.name, access="columnar_scan"
        )
        assert counter.value >= 1
        scanned = big_db.obs.counter(
            "metadb.columnar.segments_scanned", db=big_db.name
        )
        assert scanned.value >= 2


class TestDifferentialRandomized:
    def test_random_filters_match_row_path(self, big_db):
        rng = random.Random(4000)
        for _ in range(60):
            assert_equivalent(big_db, Select("ev", where=random_predicate(rng)))

    def test_random_order_limit_offset(self, big_db):
        rng = random.Random(4100)
        for _ in range(25):
            select = Select(
                "ev",
                where=random_predicate(rng),
                order_by=[(rng.choice(["val", "n", "id", "kind"]),
                           rng.choice(["asc", "desc"])), ("id", "asc")],
                limit=rng.choice([None, 0, 7, 500]),
                offset=rng.choice([0, 3]),
            )
            vectorized, row = both_paths(big_db, select)
            assert vectorized == row

    def test_random_aggregates(self, big_db):
        rng = random.Random(4200)
        for _ in range(30):
            aggregates = [
                Aggregate("count", "*", "c"),
                Aggregate(rng.choice(["sum", "avg", "min", "max"]),
                          rng.choice(["n", "val"]), "x"),
                Aggregate(rng.choice(["min", "max"]), "kind", "k"),
                Aggregate("count", "comment", "cc"),
            ]
            group_by = rng.choice([(), ("kind",), ("n",), ("flag",)])
            select = Select(
                "ev", where=random_predicate(rng),
                group_by=group_by, aggregates=aggregates,
            )
            vectorized, row = both_paths(big_db, select)
            assert vectorized == row

    def test_projection_applies_on_columnar_path(self, big_db):
        select = Select("ev", columns=["id", "kind"],
                        where=Comparison("n", ">", 50))
        vectorized, row = both_paths(big_db, select)
        assert multiset(vectorized) == multiset(row)
        assert set(vectorized[0]) == {"id", "kind"}


class TestNullAndLikeEdges:
    def test_nulls_last_both_directions(self, big_db):
        for direction in ("asc", "desc"):
            select = Select(
                "ev", where=Comparison("n", ">=", 0),
                order_by=[("val", direction), ("id", "asc")],
            )
            vectorized, row = both_paths(big_db, select)
            assert vectorized == row
            tail_nulls = [r["val"] for r in vectorized if r["val"] is None]
            assert [r["val"] for r in vectorized][-len(tail_nulls):] == tail_nulls

    def test_comparisons_never_match_null(self, big_db):
        for op in ("=", "!=", "<", ">="):
            vectorized, row = both_paths(
                big_db, Select("ev", where=Comparison("kind", op, "flare"))
            )
            assert multiset(vectorized) == multiset(row)
            assert all(r["kind"] is not None for r in vectorized)

    def test_not_over_comparison_excludes_nulls(self, big_db):
        # SQL-approximated semantics: NOT(kind = x) is true on NULL rows
        # in this engine (matches returns False, Not flips it).
        vectorized, row = both_paths(
            big_db, Select("ev", where=Not(Comparison("kind", "=", "flare")))
        )
        assert multiset(vectorized) == multiset(row)

    def test_avg_of_empty_group_is_null(self, big_db):
        select = Select(
            "ev", where=Comparison("n", ">", 100_000),
            aggregates=[Aggregate("avg", "val", "a"), Aggregate("count", "*", "c")],
        )
        vectorized, row = both_paths(big_db, select)
        assert vectorized == row == [{"a": None, "c": 0}]

    def test_grouped_aggregate_with_null_group_key(self, big_db):
        select = Select(
            "ev", group_by=["kind"],
            aggregates=[Aggregate("count", "*", "c"), Aggregate("sum", "n", "s")],
        )
        vectorized, row = both_paths(big_db, select)
        assert vectorized == row
        assert any(group["kind"] is None for group in vectorized)

    def test_like_newline_regression(self, big_db):
        # PR-4 regression: patterns must not let '%' match across a
        # newline boundary differently from the row path.
        for pattern in ("abc%", "abc_", "abc", "%\n", "ab%"):
            vectorized, row = both_paths(
                big_db, Select("ev", where=Like("kind", pattern))
            )
            assert multiset(vectorized) == multiset(row)
        matched, _ = both_paths(big_db, Select("ev", where=Like("kind", "abc_")))
        assert {r["kind"] for r in matched} == {"abc\n"}

    def test_like_on_numeric_column_matches_nothing(self, big_db):
        vectorized, row = both_paths(
            big_db, Select("ev", where=Like("n", "1%"))
        )
        assert vectorized == row == []

    def test_mixed_type_comparison_is_false_per_row(self, big_db):
        vectorized, row = both_paths(
            big_db, Select("ev", where=Comparison("n", "<", "banana"))
        )
        assert vectorized == row == []


class TestConsistencyWithRowStore:
    def test_rebuild_after_insert_update_delete(self):
        db = Database(name="mut")
        db.create_table(events_schema())
        for row in seed_rows(COLUMNAR_MIN_ROWS + 200, seed=5):
            db.execute(Insert("ev", row))
        sweep = Select("ev", where=Comparison("n", ">=", 0))
        assert db.explain_plan(sweep)["access"] == "columnar_scan"
        before = db.execute(sweep)

        store = db.table("ev")._columnar_store
        rebuilds = store.rebuilds
        db.execute(Insert("ev", {"id": 10_000, "kind": "flare", "n": 1}))
        db.execute(Update("ev", {"n": 99}, where=Comparison("id", "=", 10_000)))
        db.execute(Delete("ev", where=Comparison("id", "=", 0)))
        vectorized, row = both_paths(db, sweep)
        assert vectorized == row
        assert vectorized != before
        assert store.rebuilds == rebuilds + 1  # one lazy rebuild, not three

    def test_scan_order_matches_row_store_iteration(self, big_db):
        vectorized, row = both_paths(big_db, Select("ev"))
        assert vectorized == row  # includes order

    def test_rollback_invalidates_columnar_copy(self):
        db = Database(name="txm")
        db.create_table(events_schema())
        for row in seed_rows(COLUMNAR_MIN_ROWS + 50, seed=9):
            db.execute(Insert("ev", row))
        sweep = Select("ev", where=Comparison("n", ">=", 0))
        baseline = db.execute(sweep)
        tx = db.begin()
        db.execute(Insert("ev", {"id": 77_000, "kind": "storm", "n": 3}), tx=tx)
        assert db.execute(sweep, tx=tx) != baseline
        db.rollback(tx)
        vectorized, row = both_paths(db, sweep)
        assert vectorized == row == baseline


class TestStatsStalenessRegression:
    def test_plan_flips_back_after_bulk_delete(self):
        """Bulk DELETE must refresh cached planner statistics: the sweep
        plan drops the columnar path once the table shrinks below the
        vectorization threshold, and table_rows reflects the survivors."""
        db = Database(name="bulk")
        db.create_table(events_schema())
        n = 2000
        for row in seed_rows(n, seed=13):
            db.execute(Insert("ev", row))
        sweep = Select("ev", where=Comparison("n", ">=", 0))
        plan = db.explain_plan(sweep)
        assert plan["access"] == "columnar_scan"
        assert plan["table_rows"] == n
        db.execute(Delete("ev", where=Comparison("id", ">=", 100)))
        plan = db.explain_plan(sweep)
        assert plan["access"] == "full_scan"
        assert plan["table_rows"] == 100

    def test_stats_cache_reused_within_threshold(self):
        db = Database(name="cache")
        db.create_table(events_schema(columnar=False))
        for row in seed_rows(1000, seed=17):
            db.execute(Insert("ev", row))
        table = db.table("ev")
        first = table.stats()
        assert table.stats() is first          # no mutations: cache hit
        db.execute(Insert("ev", {"id": 90_001, "kind": "quiet", "n": 2}))
        assert table.stats() is first          # 1 < 1000/20 mutations
        for i in range(60):
            db.execute(Insert("ev", {"id": 90_100 + i, "kind": "quiet", "n": 2}))
        refreshed = table.stats()
        assert refreshed is not first          # threshold crossed
        assert refreshed.row_count == 1061


class TestShardedColumnar:
    def test_scatter_gather_is_layout_agnostic(self):
        from repro.schema import install_all
        from repro.shard import ShardedDatabase

        day = 86_400.0
        single = Database(name="colsingle")
        install_all(single)
        sharded = ShardedDatabase(boundaries=(day, 2 * day), name="colshard")
        install_all(sharded)
        for db in (single, sharded):
            db.execute(Insert("admin_users", {
                "user_id": 1, "login": "alice", "password_hash": "x",
            }))
        rng = random.Random(23)
        times = rng.sample(range(0, int(3 * day)), 1800)
        for index, t in enumerate(times, start=1):
            row = {
                "hle_id": index, "item_id": f"hle-{index}", "owner_id": 1,
                "start_time": float(t), "end_time": float(t + 60),
                "kind": rng.choice(["flare", "quiet", "storm"]),
                "peak_rate": rng.randint(0, 4000) / 4,
                "created_at": 1000.0,
            }
            single.execute(Insert("hle", row))
            sharded.execute(Insert("hle", row))

        sweeps = [
            Select("hle", where=Comparison("peak_rate", ">=", 0.0),
                   order_by=[("start_time", "asc")]),
            Select("hle", where=Like("kind", "f%"),
                   order_by=[("hle_id", "asc")]),
            Select("hle", group_by=["kind"],
                   aggregates=[Aggregate("count", "*", "c"),
                               Aggregate("max", "peak_rate", "p")]),
        ]
        for select in sweeps:
            expected = single.execute(select)
            assert sharded.execute(select) == expected
            with columnar_disabled():
                assert sharded.execute(select) == expected
                assert single.execute(select) == expected

    def test_shard_explain_surfaces_columnar_path(self):
        from repro.schema import install_all
        from repro.shard import ShardedDatabase

        sharded = ShardedDatabase(boundaries=(86_400.0,), name="colexp")
        install_all(sharded)
        sharded.execute(Insert("admin_users", {
            "user_id": 1, "login": "alice", "password_hash": "x",
        }))
        for i in range(COLUMNAR_MIN_ROWS + 10):
            sharded.execute(Insert("hle", {
                "hle_id": i + 1, "item_id": f"hle-{i}", "owner_id": 1,
                "start_time": float(i), "end_time": float(i + 1),
                "kind": "flare", "peak_rate": float(i % 7),
            }))
        plan = sharded.explain_plan(
            Select("hle", where=Comparison("peak_rate", ">=", 0.0))
        )
        assert plan["access"] == "columnar_scan"
