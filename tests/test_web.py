"""Tests for the presentation tier: templates, HTTP model, servlets."""

import re

import pytest

from repro.web import (
    HttpRequest,
    HttpResponse,
    Router,
    SESSION_COOKIE,
    Template,
    TemplateError,
    TemplateRegistry,
    ThinClient,
    WebServer,
)


class TestTemplates:
    def test_variable_substitution_and_escaping(self):
        template = Template("<p>{{ name }}</p>")
        assert template.render({"name": "a<b"}) == "<p>a&lt;b</p>"

    def test_safe_filter_skips_escaping(self):
        template = Template("{{ markup|safe }}")
        assert template.render({"markup": "<b>x</b>"}) == "<b>x</b>"

    def test_dotted_access_dict_and_attribute(self):
        class Thing:
            label = "attr"

        template = Template("{{ row.kind }}/{{ obj.label }}")
        assert template.render({"row": {"kind": "flare"}, "obj": Thing()}) == "flare/attr"

    def test_for_loop(self):
        template = Template("{% for x in items %}[{{ x }}]{% endfor %}")
        assert template.render({"items": [1, 2, 3]}) == "[1][2][3]"

    def test_if_else(self):
        template = Template("{% if user %}yes{% else %}no{% endif %}")
        assert template.render({"user": "ada"}) == "yes"
        assert template.render({"user": None}) == "no"

    def test_if_missing_variable_is_false(self):
        template = Template("{% if ghost %}yes{% else %}no{% endif %}")
        assert template.render({}) == "no"

    def test_include_via_registry(self):
        registry = TemplateRegistry()
        registry.register("header", "<h1>{{ title }}</h1>")
        registry.register("page", "{% include header %}body")
        assert registry.render("page", {"title": "T"}) == "<h1>T</h1>body"

    def test_none_renders_empty(self):
        assert Template("[{{ x }}]").render({"x": None}) == "[]"

    def test_float_formatting(self):
        assert Template("{{ v }}").render({"v": 3.14159265}) == "3.14159"

    def test_unknown_variable_raises(self):
        with pytest.raises(TemplateError):
            Template("{{ ghost }}").render({})

    def test_unclosed_tag_rejected(self):
        with pytest.raises(TemplateError):
            Template("{% for x in items %}no end")

    def test_unknown_template_rejected(self):
        with pytest.raises(TemplateError):
            TemplateRegistry().render("ghost", {})


class TestHttpModel:
    def test_get_parses_query_params(self):
        request = HttpRequest.get("/hedc/hle?id=7&view=full")
        assert request.params == {"id": "7", "view": "full"}
        assert request.path == "/hedc/hle"

    def test_router_longest_prefix_wins(self):
        router = Router()
        router.add("/hedc", lambda request: HttpResponse.html("root"))
        router.add("/hedc/hle", lambda request: HttpResponse.html("hle"))
        assert router.dispatch(HttpRequest.get("/hedc/hle?id=1")).text == "hle"
        assert router.dispatch(HttpRequest.get("/hedc")).text == "root"

    def test_router_404(self):
        router = Router()
        assert router.dispatch(HttpRequest.get("/nowhere")).status == 404

    def test_redirect_response(self):
        response = HttpResponse.redirect("/hedc/catalogs")
        assert response.status == 302
        assert response.headers["Location"] == "/hedc/catalogs"


@pytest.fixture(scope="module")
def web_stack(populated_hedc):
    hedc = populated_hedc
    server = hedc.web
    events = hedc.events()
    return hedc, server, events


@pytest.fixture()
def logged_in_client(web_stack):
    hedc, server, _events = web_stack
    client = ThinClient(server)
    assert client.login("reader", "reader-pw")
    return client


class TestServlets:
    def test_login_failure_reports_error(self, web_stack):
        _hedc, server, _events = web_stack
        client = ThinClient(server)
        response = client.post("/hedc/login", {"login": "reader", "password": "bad"})
        assert response.status == 200
        assert "bad password" in response.text
        assert SESSION_COOKIE not in client.cookies

    def test_login_sets_session_cookie(self, logged_in_client):
        assert SESSION_COOKIE in logged_in_client.cookies

    def test_catalog_list_and_page(self, web_stack, logged_in_client):
        hedc, _server, _events = web_stack
        listing = logged_in_client.get("/hedc/catalogs")
        assert listing.status == 200
        assert "standard" in listing.text
        page = logged_in_client.get(f"/hedc/catalog?id={hedc.standard_catalog_id}")
        assert page.status == 200
        assert "/hedc/hle?id=" in page.text

    def test_hle_page_issues_seven_queries(self, web_stack, logged_in_client):
        hedc, _server, events = web_stack
        hedc.dm.io.stats.reset()
        response = logged_in_client.get(f"/hedc/hle?id={events[0]['hle_id']}")
        assert response.status == 200
        # §7.2: on average seven DM queries per request (the page proper;
        # name-mapping's second hop counts within them).
        assert hedc.dm.io.stats.queries == 7

    def test_hle_page_contains_event_fields(self, web_stack, logged_in_client):
        _hedc, _server, events = web_stack
        response = logged_in_client.get(f"/hedc/hle?id={events[0]['hle_id']}")
        assert events[0]["kind"] in response.text
        assert "similar events" in response.text

    def test_missing_hle_id_is_400(self, logged_in_client):
        assert logged_in_client.get("/hedc/hle").status == 400
        assert logged_in_client.get("/hedc/hle?id=abc").status == 400

    def test_unknown_hle_is_500_entity_error(self, logged_in_client):
        assert logged_in_client.get("/hedc/hle?id=99999").status == 500

    def test_search_by_kind_and_rate(self, web_stack, logged_in_client):
        _hedc, _server, events = web_stack
        kind = events[0]["kind"]
        response = logged_in_client.get(f"/hedc/search?kind={kind}")
        assert response.status == 200
        assert f"/hedc/hle?id={events[0]['hle_id']}" in response.text

    def test_search_with_user_sql(self, web_stack, logged_in_client):
        _hedc, _server, _events = web_stack
        sql = "select hle_id, title, kind, peak_rate from hle where peak_rate > 0"
        response = logged_in_client.get("/hedc/search?sql=" + sql.replace(" ", "+"))
        assert response.status == 200
        assert "/hedc/hle?id=" in response.text

    def test_sql_restricted_to_selects_on_domain_tables(self, web_stack, logged_in_client):
        _hedc, _server, _events = web_stack
        response = logged_in_client.get(
            "/hedc/search?sql=select+login+from+admin_users"
        )
        assert response.status == 500  # rejected

    def test_anonymous_gets_no_sql_form(self, web_stack):
        _hedc, server, _events = web_stack
        response = ThinClient(server).get("/hedc/search")
        assert "textarea" not in response.text

    def test_download_requires_right(self, web_stack, logged_in_client):
        hedc, server, _events = web_stack
        from repro.metadb import Select

        unit = hedc.dm.io.execute(Select("raw_units"))[0]
        anonymous = ThinClient(server)
        assert anonymous.get(f"/hedc/download?item={unit['item_id']}").status == 403
        response = logged_in_client.get(f"/hedc/download?item={unit['item_id']}")
        assert response.status == 200
        assert response.body[:2] == b"\x1f\x8b"  # gzipped FITS

    def test_analyze_via_web_creates_analysis(self, web_stack, logged_in_client):
        hedc, _server, events = web_stack
        response = logged_in_client.get(
            f"/hedc/analyze?hle={events[0]['hle_id']}&algorithm=histogram&n_bins=16"
        )
        assert response.status == 302
        ana_page = logged_in_client.get(response.headers["Location"])
        assert ana_page.status == 200
        assert "histogram" in ana_page.text

    def test_analysis_images_served_and_visible(self, web_stack, logged_in_client):
        _hedc, _server, events = web_stack
        result = logged_in_client.browse_hle(events[0]["hle_id"])
        assert result.page_bytes > 500
        # The analyze test above attached at least one image to this HLE.
        assert result.n_images >= 1
        assert result.image_bytes > 0

    def test_static_images_cached_client_side(self, web_stack):
        _hedc, server, _events = web_stack
        client = ThinClient(server)
        before = server.requests_served
        client.get("/static/logo.pgm")
        client.get("/static/logo.pgm")
        assert server.requests_served == before + 1  # second hit from cache

    def test_server_counts_requests_and_bytes(self, web_stack):
        _hedc, server, _events = web_stack
        client = ThinClient(server)
        before = server.bytes_sent
        client.get("/hedc/catalogs")
        assert server.bytes_sent > before


class TestObservabilityIntegration:
    """A full browse through the three tiers, observed end to end."""

    def test_browse_produces_span_tree_and_route_metrics(self, web_stack):
        hedc, server, events = web_stack
        client = ThinClient(server)
        assert client.login("reader", "reader-pw")
        hedc.obs.enable()
        hedc.obs.tracer.reset()
        try:
            result = client.browse_hle(events[0]["hle_id"])
        finally:
            hedc.obs.disable()
        assert result.elapsed_s > 0

        # One browse is one trace: client.browse_s at the root, the
        # web → dm → metadb chain nested beneath it.
        roots = [span for span in hedc.obs.tracer.finished_spans()
                 if span.name == "client.browse_s"]
        assert len(roots) == 1
        handles = roots[0].find("web.handle")
        assert len(handles) == result.n_requests
        hle_handle = next(span for span in handles
                          if span.tags.get("route") == "/hedc/hle")
        assert hle_handle.tags.get("status") == 200
        dm_spans = hle_handle.find("dm.query")
        assert dm_spans, "web.handle must contain dm.query spans"
        assert dm_spans[0].find("metadb.execute"), \
            "dm.query must contain metadb.execute spans"
        # Every span in the tree belongs to the same trace.
        assert {span.trace_id for span in roots[0].walk()} == {roots[0].span_id}

        # The edge servlet serves per-route latency histograms.
        response = client.get("/hedc/metrics")
        assert response.status == 200
        assert response.content_type == "text/plain"
        hle_lines = [line for line in response.text.splitlines()
                     if line.startswith("web.request_s,route=/hedc/hle")]
        assert len(hle_lines) == 1
        assert "p50=" in hle_lines[0] and "p95=" in hle_lines[0]
        registry = hedc.obs.registry
        assert registry.get("web.request_s",
                            server=server.name, route="/hedc/hle").count > 0
        assert registry.value("web.responses", server=server.name,
                              route="/hedc/hle", status="200") > 0

    def test_metrics_servlet_json_format(self, web_stack):
        hedc, server, _events = web_stack
        import json

        client = ThinClient(server)
        response = client.get("/hedc/metrics?format=json")
        assert response.status == 200
        assert response.content_type == "application/json"
        data = json.loads(response.text)
        assert "metrics" in data and "traces" in data
        assert "web.requests" in data["metrics"]

    def test_telemetry_report_summarises_tiers(self, web_stack):
        hedc, _server, _events = web_stack
        report = hedc.telemetry_report()
        assert report["node"] == "dm0"
        assert report["db"]["queries"] > 0
        assert report["db"]["latency"]["count"] >= 0
        assert set(report["pools"]) == {"queries", "updates", "auth"}
        assert 0.0 <= report["sessions"]["hit_ratio"] <= 1.0
        assert report["name_mapping"]["lookups"] > 0
        assert "metrics" in report


class TestConditionalGets:
    """ETag/If-None-Match on the result servlets: derived products are
    immutable, so their registered checksums are strong validators."""

    def _first_image_url(self, client, events):
        response = client.get(
            f"/hedc/analyze?hle={events[0]['hle_id']}&algorithm=histogram&n_bins=24"
        )
        assert response.status == 302
        ana_page = client.get(response.headers["Location"])
        match = re.search(r'src="(/hedc/image[^"]+)"', ana_page.text)
        assert match is not None
        return match.group(1).replace("&amp;", "&")

    def test_image_served_with_etag_then_304(self, web_stack, logged_in_client):
        _hedc, server, events = web_stack
        url = self._first_image_url(logged_in_client, events)
        first = server.handle(
            HttpRequest.get(url, logged_in_client.cookies))
        assert first.status == 200
        etag = first.headers.get("ETag")
        assert etag and etag.startswith('"')
        revalidation = server.handle(
            HttpRequest.get(url, logged_in_client.cookies,
                            headers={"If-None-Match": etag}))
        assert revalidation.status == 304
        assert revalidation.body == b""
        assert revalidation.headers["ETag"] == etag
        stale = server.handle(
            HttpRequest.get(url, logged_in_client.cookies,
                            headers={"If-None-Match": '"other"'}))
        assert stale.status == 200 and stale.body == first.body

    def test_ana_page_served_with_etag_then_304(self, web_stack, logged_in_client):
        hedc, server, events = web_stack
        response = logged_in_client.get(
            f"/hedc/analyze?hle={events[0]['hle_id']}&algorithm=histogram&n_bins=28"
        )
        assert response.status == 302
        url = response.headers["Location"]
        first = server.handle(HttpRequest.get(url, logged_in_client.cookies))
        assert first.status == 200
        etag = first.headers["ETag"]
        revalidation = server.handle(
            HttpRequest.get(url, logged_in_client.cookies,
                            headers={"If-None-Match": etag}))
        assert revalidation.status == 304
        assert hedc.obs.registry.value("web.not_modified",
                                       route="/hedc/ana") >= 1

    def test_download_revalidates_by_checksum(self, web_stack, logged_in_client):
        hedc, server, _events = web_stack
        from repro.metadb import Select

        unit = hedc.dm.io.execute(Select("raw_units"))[0]
        url = f"/hedc/download?item={unit['item_id']}"
        first = server.handle(HttpRequest.get(url, logged_in_client.cookies))
        assert first.status == 200
        etag = first.headers["ETag"]
        revalidation = server.handle(
            HttpRequest.get(url, logged_in_client.cookies,
                            headers={"If-None-Match": etag}))
        assert revalidation.status == 304

    def test_thin_client_revalidation_cache(self, web_stack, logged_in_client):
        hedc, _server, events = web_stack
        url = self._first_image_url(logged_in_client, events)
        revalidated = hedc.obs.counter("client.revalidated",
                                       client=logged_in_client.client_ip)
        before = revalidated.value
        first = logged_in_client.get(url)
        assert first.status == 200
        second = logged_in_client.get(url)
        # The client sent If-None-Match, the server answered 304, and the
        # client replayed its cached body transparently.
        assert second.status == 200
        assert second.body == first.body
        assert revalidated.value == before + 1
