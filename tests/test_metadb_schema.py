"""Unit tests for metadb types and table schemas."""

import datetime as dt

import pytest

from repro.metadb import Column, ColumnType, ForeignKey, IntegrityError, SchemaError, TableSchema, coerce
from repro.metadb.types import type_from_name


class TestCoercion:
    def test_integer_accepts_int_and_integral_float(self):
        assert coerce(5, ColumnType.INTEGER) == 5
        assert coerce(5.0, ColumnType.INTEGER) == 5
        assert coerce("7", ColumnType.INTEGER) == 7

    def test_integer_rejects_fractional_float(self):
        with pytest.raises(TypeError):
            coerce(5.5, ColumnType.INTEGER)

    def test_real_accepts_numbers_and_numeric_strings(self):
        assert coerce(3, ColumnType.REAL) == 3.0
        assert coerce("2.5", ColumnType.REAL) == 2.5

    def test_real_rejects_boolean(self):
        with pytest.raises(TypeError):
            coerce(True, ColumnType.REAL)

    def test_text_only_accepts_strings(self):
        assert coerce("hello", ColumnType.TEXT) == "hello"
        with pytest.raises(TypeError):
            coerce(5, ColumnType.TEXT)

    def test_boolean_accepts_bool_and_binary_int(self):
        assert coerce(True, ColumnType.BOOLEAN) is True
        assert coerce(0, ColumnType.BOOLEAN) is False
        with pytest.raises(TypeError):
            coerce(2, ColumnType.BOOLEAN)

    def test_timestamp_accepts_float_datetime_and_iso_string(self):
        assert coerce(100.5, ColumnType.TIMESTAMP) == 100.5
        epoch = dt.datetime(1970, 1, 1, tzinfo=dt.timezone.utc)
        assert coerce(epoch, ColumnType.TIMESTAMP) == 0.0
        assert coerce("1970-01-01T00:01:00+00:00", ColumnType.TIMESTAMP) == 60.0

    def test_timestamp_naive_datetime_treated_as_utc(self):
        assert coerce(dt.datetime(1970, 1, 2), ColumnType.TIMESTAMP) == 86_400.0

    def test_blob_accepts_bytes(self):
        assert coerce(b"\x00\x01", ColumnType.BLOB) == b"\x00\x01"
        with pytest.raises(TypeError):
            coerce("text", ColumnType.BLOB)

    def test_none_passes_through_all_types(self):
        for column_type in ColumnType:
            assert coerce(None, column_type) is None

    def test_type_names_and_aliases(self):
        assert type_from_name("INT") is ColumnType.INTEGER
        assert type_from_name("varchar") is ColumnType.TEXT
        assert type_from_name("DOUBLE") is ColumnType.REAL
        assert type_from_name("TIMESTAMP") is ColumnType.TIMESTAMP
        with pytest.raises(SchemaError):
            type_from_name("GEOMETRY")


def _user_schema() -> TableSchema:
    return TableSchema(
        "users",
        [
            Column("user_id", ColumnType.INTEGER, nullable=False),
            Column("login", ColumnType.TEXT, nullable=False),
            Column("age", ColumnType.INTEGER),
            Column("active", ColumnType.BOOLEAN, default=True),
        ],
        primary_key="user_id",
        unique=[("login",)],
    )


class TestTableSchema:
    def test_rejects_duplicate_columns(self):
        with pytest.raises(SchemaError):
            TableSchema("t", [Column("a", ColumnType.INTEGER)] * 2)

    def test_rejects_unknown_primary_key(self):
        with pytest.raises(SchemaError):
            TableSchema("t", [Column("a", ColumnType.INTEGER)], primary_key="b")

    def test_rejects_nullable_primary_key(self):
        with pytest.raises(SchemaError):
            TableSchema(
                "t", [Column("a", ColumnType.INTEGER, nullable=True)], primary_key="a"
            )

    def test_rejects_uppercase_column_names(self):
        with pytest.raises(SchemaError):
            Column("BadName", ColumnType.TEXT)

    def test_rejects_unknown_unique_and_index_columns(self):
        with pytest.raises(SchemaError):
            TableSchema("t", [Column("a", ColumnType.INTEGER)], unique=[("b",)])
        with pytest.raises(SchemaError):
            TableSchema("t", [Column("a", ColumnType.INTEGER)], indexes=[("b",)])

    def test_normalize_applies_defaults_on_insert(self):
        schema = _user_schema()
        row = schema.normalize_row({"user_id": 1, "login": "ada"})
        assert row["active"] is True
        assert row["age"] is None

    def test_normalize_enforces_not_null(self):
        schema = _user_schema()
        with pytest.raises(IntegrityError):
            schema.normalize_row({"user_id": 1})  # login missing

    def test_normalize_enforces_types(self):
        schema = _user_schema()
        with pytest.raises(IntegrityError):
            schema.normalize_row({"user_id": 1, "login": "ada", "age": "old"})

    def test_normalize_rejects_unknown_columns(self):
        schema = _user_schema()
        with pytest.raises(SchemaError):
            schema.normalize_row({"user_id": 1, "login": "ada", "nope": 1})

    def test_normalize_for_update_checks_only_provided(self):
        schema = _user_schema()
        row = schema.normalize_row({"age": 30}, for_update=True)
        assert row == {"age": 30}

    def test_callable_default_evaluated_per_row(self):
        counter = {"n": 0}

        def next_value():
            counter["n"] += 1
            return counter["n"]

        schema = TableSchema(
            "t",
            [Column("id", ColumnType.INTEGER, nullable=False),
             Column("seq", ColumnType.INTEGER, default=next_value)],
            primary_key="id",
        )
        assert schema.normalize_row({"id": 1})["seq"] == 1
        assert schema.normalize_row({"id": 2})["seq"] == 2

    def test_round_trip_through_dict(self):
        schema = TableSchema(
            "t",
            [Column("id", ColumnType.INTEGER, nullable=False),
             Column("ref", ColumnType.INTEGER)],
            primary_key="id",
            unique=[("ref",)],
            foreign_keys=[ForeignKey("ref", "other", "id")],
            indexes=[("ref",)],
        )
        restored = TableSchema.from_dict(schema.to_dict())
        assert restored.name == "t"
        assert restored.primary_key == "id"
        assert restored.unique == [("ref",)]
        assert restored.indexes == [("ref",)]
        assert restored.foreign_keys[0].ref_table == "other"
