"""Unit tests for the discrete-event simulation substrate."""

import math

import pytest

from repro.simkit import (
    AllOf,
    FcfsServer,
    Future,
    Interrupted,
    ProcessorSharing,
    RandomStream,
    SimulationError,
    Simulator,
    StreamFactory,
    Tally,
    TimeWeighted,
    spawn,
)


class TestEventLoop:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(5.0, lambda: fired.append("b"))
        sim.schedule(1.0, lambda: fired.append("a"))
        sim.schedule(9.0, lambda: fired.append("c"))
        sim.run()
        assert fired == ["a", "b", "c"]
        assert sim.now == 9.0

    def test_equal_times_fire_in_insertion_order(self):
        sim = Simulator()
        fired = []
        for label in "abc":
            sim.schedule(1.0, lambda label=label: fired.append(label))
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_priority_breaks_ties(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append("low"), priority=5)
        sim.schedule(1.0, lambda: fired.append("high"), priority=0)
        sim.run()
        assert fired == ["high", "low"]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)

    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(1.0, lambda: fired.append("x"))
        handle.cancel()
        sim.run()
        assert fired == []
        assert handle.cancelled

    def test_run_until_advances_clock_past_last_event(self):
        sim = Simulator()
        sim.schedule(2.0, lambda: None)
        sim.run(until=10.0)
        assert sim.now == 10.0

    def test_run_until_does_not_fire_later_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(5.0, lambda: fired.append("early"))
        sim.schedule(50.0, lambda: fired.append("late"))
        sim.run(until=10.0)
        assert fired == ["early"]

    def test_schedule_at_absolute_time(self):
        sim = Simulator()
        times = []
        sim.schedule_at(7.5, lambda: times.append(sim.now))
        sim.run()
        assert times == [7.5]

    def test_events_scheduled_during_run_fire(self):
        sim = Simulator()
        fired = []

        def chain():
            fired.append(sim.now)
            if len(fired) < 3:
                sim.schedule(1.0, chain)

        sim.schedule(1.0, chain)
        sim.run()
        assert fired == [1.0, 2.0, 3.0]

    def test_peek_skips_cancelled(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        handle.cancel()
        assert sim.peek() == 2.0


class TestProcesses:
    def test_process_holds_for_yielded_delay(self):
        sim = Simulator()
        log = []

        def proc():
            log.append(sim.now)
            yield 3.0
            log.append(sim.now)

        spawn(sim, proc())
        sim.run()
        assert log == [0.0, 3.0]

    def test_process_result_future_resolves_with_return_value(self):
        sim = Simulator()

        def proc():
            yield 1.0
            return 42

        process = spawn(sim, proc())
        sim.run()
        assert process.result.done
        assert process.result.value == 42

    def test_process_waits_on_future(self):
        sim = Simulator()
        future = Future(sim)
        log = []

        def waiter():
            value = yield future
            log.append((sim.now, value))

        spawn(sim, waiter())
        sim.schedule(5.0, lambda: future.resolve("ready"))
        sim.run()
        assert log == [(5.0, "ready")]

    def test_process_waits_on_another_process(self):
        sim = Simulator()
        log = []

        def inner():
            yield 2.0
            return "inner-done"

        def outer():
            value = yield spawn(sim, inner())
            log.append((sim.now, value))

        spawn(sim, outer())
        sim.run()
        assert log == [(2.0, "inner-done")]

    def test_all_of_waits_for_every_future(self):
        sim = Simulator()
        futures = [Future(sim) for _ in range(3)]
        log = []

        def waiter():
            values = yield AllOf(futures)
            log.append((sim.now, values))

        spawn(sim, waiter())
        for delay, future in zip((1.0, 3.0, 2.0), futures):
            sim.schedule(delay, lambda f=future, d=delay: f.resolve(d))
        sim.run()
        assert log == [(3.0, [1.0, 3.0, 2.0])]

    def test_interrupt_raises_inside_process(self):
        sim = Simulator()
        log = []

        def sleeper():
            try:
                yield 100.0
            except Interrupted as interrupt:
                log.append((sim.now, interrupt.cause))

        process = spawn(sim, sleeper())
        sim.schedule(5.0, lambda: process.interrupt("wake"))
        sim.run()
        assert log == [(5.0, "wake")]

    def test_future_double_resolve_rejected(self):
        sim = Simulator()
        future = Future(sim)
        future.resolve(1)
        with pytest.raises(SimulationError):
            future.resolve(2)

    def test_unresolved_future_value_raises(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            _ = Future(sim).value


class TestProcessorSharing:
    def test_single_job_runs_at_full_speed(self):
        sim = Simulator()
        cpu = ProcessorSharing(sim, cores=1, speed=1.0)
        done = []
        cpu.service(5.0).add_callback(lambda f: done.append(sim.now))
        sim.run()
        assert done == [5.0]

    def test_two_jobs_share_one_core(self):
        sim = Simulator()
        cpu = ProcessorSharing(sim, cores=1)
        done = []
        cpu.service(4.0).add_callback(lambda f: done.append(sim.now))
        cpu.service(4.0).add_callback(lambda f: done.append(sim.now))
        sim.run()
        # Each receives half rate: both finish at t=8.
        assert done == [8.0, 8.0]

    def test_two_jobs_on_two_cores_do_not_interfere(self):
        sim = Simulator()
        cpu = ProcessorSharing(sim, cores=2)
        done = []
        cpu.service(4.0).add_callback(lambda f: done.append(sim.now))
        cpu.service(4.0).add_callback(lambda f: done.append(sim.now))
        sim.run()
        assert done == [4.0, 4.0]

    def test_short_job_finishes_first_under_sharing(self):
        sim = Simulator()
        cpu = ProcessorSharing(sim, cores=1)
        order = []
        cpu.service(10.0).add_callback(lambda f: order.append("long"))
        cpu.service(1.0).add_callback(lambda f: order.append("short"))
        sim.run()
        assert order == ["short", "long"]
        # short: 2 units elapsed (half rate); long: 1 + 9 = 11 total.
        assert sim.now == pytest.approx(11.0)

    def test_late_arrival_slows_existing_job(self):
        sim = Simulator()
        cpu = ProcessorSharing(sim, cores=1)
        done = {}
        cpu.service(4.0).add_callback(lambda f: done.setdefault("first", sim.now))

        def late():
            yield 2.0
            yield cpu.service(4.0)
            done["second"] = sim.now

        spawn(sim, late())
        sim.run()
        # First does 2 units alone, then shares: remaining 2 at half rate -> t=6.
        assert done["first"] == pytest.approx(6.0)
        assert done["second"] == pytest.approx(8.0)

    def test_zero_work_job_completes_immediately(self):
        sim = Simulator()
        cpu = ProcessorSharing(sim)
        done = []
        cpu.service(0.0).add_callback(lambda f: done.append(sim.now))
        sim.run()
        assert done == [0.0]

    def test_busy_time_accounting(self):
        sim = Simulator()
        cpu = ProcessorSharing(sim, cores=1)
        cpu.service(3.0)
        sim.run()
        assert cpu.busy_time == pytest.approx(3.0)
        assert cpu.completed_jobs == 1

    def test_invalid_parameters_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            ProcessorSharing(sim, cores=0)
        with pytest.raises(ValueError):
            ProcessorSharing(sim, speed=0)
        cpu = ProcessorSharing(sim)
        with pytest.raises(ValueError):
            cpu.service(-1.0)


class TestFcfsServer:
    def test_jobs_queue_behind_busy_server(self):
        sim = Simulator()
        server = FcfsServer(sim, servers=1)
        done = []
        server.request(3.0).add_callback(lambda f: done.append(sim.now))
        server.request(3.0).add_callback(lambda f: done.append(sim.now))
        sim.run()
        assert done == [3.0, 6.0]

    def test_multiple_servers_run_in_parallel(self):
        sim = Simulator()
        server = FcfsServer(sim, servers=2)
        done = []
        for _ in range(4):
            server.request(2.0).add_callback(lambda f: done.append(sim.now))
        sim.run()
        assert done == [2.0, 2.0, 4.0, 4.0]

    def test_future_resolves_with_total_time_in_station(self):
        sim = Simulator()
        server = FcfsServer(sim, servers=1)
        values = []
        server.request(2.0).add_callback(lambda f: values.append(f.value))
        server.request(2.0).add_callback(lambda f: values.append(f.value))
        sim.run()
        assert values == [pytest.approx(2.0), pytest.approx(4.0)]

    def test_utilization_half_loaded(self):
        sim = Simulator()
        server = FcfsServer(sim, servers=2)
        server.request(4.0)
        sim.run(until=4.0)
        assert server.busy_time == pytest.approx(2.0)  # 1 of 2 servers, 4 s

    def test_negative_service_rejected(self):
        sim = Simulator()
        server = FcfsServer(sim)
        with pytest.raises(ValueError):
            server.request(-0.5)


class TestStats:
    def test_tally_mean_and_extremes(self):
        tally = Tally()
        for value in (1.0, 2.0, 3.0, 4.0):
            tally.record(value)
        assert tally.mean == pytest.approx(2.5)
        assert tally.minimum == 1.0
        assert tally.maximum == 4.0
        assert tally.count == 4

    def test_tally_variance_matches_textbook(self):
        tally = Tally()
        for value in (2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0):
            tally.record(value)
        assert tally.variance == pytest.approx(32.0 / 7.0)
        assert tally.stdev == pytest.approx(math.sqrt(32.0 / 7.0))

    def test_empty_tally_is_zero(self):
        tally = Tally()
        assert tally.mean == 0.0
        assert tally.variance == 0.0

    def test_time_weighted_mean(self):
        sim = Simulator()
        signal = TimeWeighted(sim)
        signal.record(0.0)
        sim.schedule(4.0, lambda: signal.record(10.0))
        sim.run(until=8.0)
        # 0 for 4 s then 10 for 4 s -> mean 5.
        assert signal.mean(until=8.0) == pytest.approx(5.0)

    def test_time_weighted_current(self):
        sim = Simulator()
        signal = TimeWeighted(sim)
        signal.record(3.0)
        assert signal.current == 3.0


class TestRandomStreams:
    def test_streams_are_reproducible(self):
        a = StreamFactory(42).stream("arrivals")
        b = StreamFactory(42).stream("arrivals")
        assert [a.uniform() for _ in range(5)] == [b.uniform() for _ in range(5)]

    def test_different_names_are_independent(self):
        factory = StreamFactory(42)
        a = factory.stream("arrivals")
        b = factory.stream("service")
        assert [a.uniform() for _ in range(5)] != [b.uniform() for _ in range(5)]

    def test_exponential_mean(self):
        stream = RandomStream(7)
        samples = [stream.exponential(2.0) for _ in range(20_000)]
        assert sum(samples) / len(samples) == pytest.approx(2.0, rel=0.05)

    def test_lognormal_mean_and_positivity(self):
        stream = RandomStream(7)
        samples = [stream.lognormal(10.0, 0.5) for _ in range(20_000)]
        assert min(samples) > 0
        assert sum(samples) / len(samples) == pytest.approx(10.0, rel=0.05)

    def test_poisson_mean(self):
        stream = RandomStream(7)
        samples = [stream.poisson(4.0) for _ in range(20_000)]
        assert sum(samples) / len(samples) == pytest.approx(4.0, rel=0.05)

    def test_poisson_large_mean_uses_normal_approximation(self):
        stream = RandomStream(7)
        value = stream.poisson(1000.0)
        assert 700 < value < 1300

    def test_invalid_parameters(self):
        stream = RandomStream(0)
        with pytest.raises(ValueError):
            stream.exponential(0.0)
        with pytest.raises(ValueError):
            stream.lognormal(-1.0, 0.5)
        with pytest.raises(ValueError):
            stream.poisson(-1.0)
