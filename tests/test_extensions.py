"""Tests for the extension features: database replication (§7.3),
predefined queries and reports (§4.1), purge rules (§4.1), the animation
strategy (§3.1), and StreamCorder uploads (§4.1)."""

import time

import pytest

from repro.dm import PurgeRule
from repro.metadb import (
    Column,
    ColumnType,
    Comparison,
    Database,
    Delete,
    Insert,
    IntegrityError,
    QueryError,
    ReplicatedDatabase,
    Select,
    TableSchema,
    Update,
    clone_database,
)
from repro.pl import Phase
from repro.security import AuthError


def _schema() -> TableSchema:
    return TableSchema(
        "t",
        [Column("a", ColumnType.INTEGER, nullable=False),
         Column("v", ColumnType.TEXT)],
        primary_key="a",
    )


class TestReplication:
    def test_clone_copies_schema_and_rows(self):
        primary = Database(name="p")
        primary.create_table(_schema())
        primary.execute(Insert("t", {"a": 1, "v": "x"}))
        replica = clone_database(primary)
        assert replica.table_names() == ["t"]
        assert replica.execute(Select("t")) == primary.execute(Select("t"))

    def test_writes_reach_all_copies(self):
        primary = Database(name="p")
        primary.create_table(_schema())
        replicated = ReplicatedDatabase(primary)
        replicated.add_replica()
        replicated.add_replica()
        replicated.execute(Insert("t", {"a": 1, "v": "x"}))
        replicated.execute(Update("t", {"v": "y"}, Comparison("a", "=", 1)))
        assert replicated.verify_consistency()
        for copy in [primary, *replicated.replicas]:
            assert copy.execute(Select("t"))[0]["v"] == "y"

    def test_reads_rotate_across_copies(self):
        primary = Database(name="p")
        primary.create_table(_schema())
        replicated = ReplicatedDatabase(primary)
        replicated.add_replica()
        for _query in range(10):
            replicated.execute(Select("t"))
        assert replicated.reads_by_copy["p"] == 5
        assert replicated.reads_by_copy["p-r1"] == 5

    def test_failed_write_rolls_back_everywhere(self):
        primary = Database(name="p")
        primary.create_table(_schema())
        replicated = ReplicatedDatabase(primary)
        replicated.add_replica()
        replicated.execute(Insert("t", {"a": 1, "v": "x"}))
        with pytest.raises(IntegrityError):
            replicated.execute(Insert("t", {"a": 1, "v": "dup"}))
        assert replicated.verify_consistency()
        assert len(primary.execute(Select("t"))) == 1

    def test_explicit_transaction_spans_copies(self):
        primary = Database(name="p")
        primary.create_table(_schema())
        replicated = ReplicatedDatabase(primary)
        replicated.add_replica()
        tx = replicated.begin()
        replicated.execute(Insert("t", {"a": 1, "v": "x"}), tx=tx)
        replicated.rollback(tx)
        assert replicated.verify_consistency()
        assert primary.execute(Select("t")) == []

    def test_delete_replicated(self):
        primary = Database(name="p")
        primary.create_table(_schema())
        replicated = ReplicatedDatabase(primary)
        replicated.add_replica()
        replicated.execute(Insert("t", {"a": 1, "v": "x"}))
        replicated.execute(Delete("t", Comparison("a", "=", 1)))
        assert replicated.verify_consistency()

    def test_dm_runs_on_replicated_database(self, tmp_path):
        """The DM's I/O layer sits on a ReplicatedDatabase unchanged."""
        from repro.dm import DataManager
        from repro.filestore import DiskArchive, StorageManager

        primary = Database(name="hedc")
        replicated = ReplicatedDatabase(primary)
        storage = StorageManager()
        archive = DiskArchive("main", tmp_path / "archive")
        storage.register(archive)
        dm = DataManager(replicated, storage, install_schema=True)
        dm.io.names.register_archive("main", str(archive.root))
        replicated.add_replica()  # replicate AFTER schema install
        alice = dm.users.create_user("alice", "pw", group="scientist")
        hle_id = dm.semantic.insert_hle(alice, {"start_time": 0.0, "end_time": 1.0})
        assert replicated.verify_consistency()
        assert dm.semantic.get_hle(alice, hle_id)["hle_id"] == hle_id


class TestPredefinedQueries:
    def test_register_list_run(self, dm):
        alice = dm.users.create_user("alice", "pw", group="scientist")
        for index in range(3):
            dm.semantic.insert_hle(
                alice,
                {"start_time": float(index), "end_time": float(index + 1),
                 "peak_rate": 100.0 * (index + 1), "public": index % 2 == 0},
            )
        dm.queries.register(
            "bright", "SELECT * FROM hle WHERE peak_rate >= 200 ORDER BY peak_rate DESC",
            description="bright events",
        )
        assert "bright" in dm.queries.names()
        assert dm.queries.describe("bright")["description"] == "bright events"
        # Anonymous callers see only public rows.
        anonymous = dm.queries.run("bright")
        assert all(row["public"] for row in anonymous)
        # The owner sees her private rows too.
        owned = dm.queries.run("bright", alice)
        assert len(owned) >= len(anonymous)

    def test_only_selects_on_domain_tables(self, dm):
        with pytest.raises(QueryError):
            dm.queries.register("bad", "DELETE FROM hle")
        with pytest.raises(QueryError):
            dm.queries.register("bad", "SELECT * FROM admin_users")

    def test_update_retunes_at_runtime(self, dm):
        dm.queries.register("q", "SELECT * FROM hle WHERE peak_rate > 10")
        dm.queries.update("q", "SELECT * FROM hle WHERE peak_rate > 999")
        assert "999" in dm.queries.describe("q")["sql"]
        with pytest.raises(KeyError):
            dm.queries.update("ghost", "SELECT * FROM hle")

    def test_unknown_query_rejected(self, dm):
        with pytest.raises(KeyError):
            dm.queries.run("ghost")

    def test_preset_served_through_web(self, populated_hedc):
        from repro.web import ThinClient

        hedc = populated_hedc
        if "everything" not in hedc.dm.queries.names():
            hedc.dm.queries.register(
                "everything", "SELECT * FROM hle ORDER BY start_time"
            )
        client = ThinClient(hedc.web)
        response = client.get("/hedc/search?preset=everything")
        assert response.status == 200
        assert "/hedc/hle?id=" in response.text


class TestReports:
    def test_repository_totals(self, populated_hedc):
        totals = populated_hedc.dm.reports.repository_totals()
        assert totals["hle"] == len(populated_hedc.events())
        assert totals["raw_units"] > 0

    def test_usage_summary_after_analyses(self, tmp_path):
        from repro.core import Hedc

        hedc = Hedc.create(tmp_path / "h")
        hedc.ingest_observation(duration_s=240.0, seed=17, unit_target_photons=10**6)
        user = hedc.register_user("u", "pw")
        event = hedc.events()[0]
        hedc.analyze(user, event["hle_id"], "histogram")
        hedc.analyze(user, event["hle_id"], "lightcurve")
        summary = {row["operation"]: row for row in hedc.dm.reports.usage_summary()}
        assert summary["analysis:histogram"]["n"] == 1
        assert summary["analysis:lightcurve"]["avg_ms"] > 0
        top = hedc.dm.reports.top_users()
        assert top[0]["user_id"] == user.user_id

    def test_archive_status_report(self, populated_hedc):
        populated_hedc.dm.process.sync_archive_status()
        status = populated_hedc.dm.reports.archive_status()
        assert any(row["archive_id"] == "main" for row in status)

    def test_lineage_report(self, dm, tmp_path):
        dm.process._record_lineage("migration", "a:x", "b:x")
        rows = dm.reports.lineage_for("a:x")
        assert len(rows) == 1 and rows[0]["kind"] == "migration"


class TestPurgeRules:
    def _dm_with_old_private_analysis(self, dm):
        from repro.analysis import AnalysisProduct, render_pgm
        import numpy as np

        alice = dm.users.create_user("alice", "pw", group="scientist")
        hle_id = dm.semantic.insert_hle(alice, {"start_time": 0.0, "end_time": 1.0})
        product = AnalysisProduct("imaging", {})
        product.add_image(render_pgm(np.eye(4)))
        old_ana = dm.semantic.import_analysis(alice, hle_id, product, {})
        fresh_product = AnalysisProduct("imaging", {})
        fresh_product.add_image(render_pgm(np.eye(4)))
        fresh_ana = dm.semantic.import_analysis(alice, hle_id, fresh_product, {})
        # Backdate the first analysis by a day.
        dm.io.execute(Update(
            "ana", {"created_at": time.time() - 86_400.0},
            Comparison("ana_id", "=", old_ana),
        ))
        return alice, hle_id, old_ana, fresh_ana

    def test_purge_removes_only_expired_private(self, dm):
        alice, hle_id, old_ana, fresh_ana = self._dm_with_old_private_analysis(dm)
        dm.maintenance.add_purge_rule(PurgeRule("day-old", max_age_s=3600.0))
        reports = dm.maintenance.apply_purge_rules()
        assert reports[0].analyses_deleted == 1
        assert reports[0].files_deleted >= 1
        assert reports[0].bytes_reclaimed > 0
        remaining = dm.semantic.analyses_for_hle(alice, hle_id)
        assert [row["ana_id"] for row in remaining] == [fresh_ana]

    def test_public_analyses_never_purged(self, dm):
        alice, hle_id, old_ana, _fresh = self._dm_with_old_private_analysis(dm)
        dm.semantic.publish_analysis(alice, old_ana)
        dm.maintenance.add_purge_rule(PurgeRule("day-old", max_age_s=3600.0))
        reports = dm.maintenance.apply_purge_rules()
        assert reports[0].analyses_deleted == 0

    def test_algorithm_scoped_rule(self, dm):
        alice, hle_id, old_ana, _fresh = self._dm_with_old_private_analysis(dm)
        dm.maintenance.add_purge_rule(
            PurgeRule("hist-only", max_age_s=3600.0, algorithm="histogram")
        )
        reports = dm.maintenance.apply_purge_rules()
        assert reports[0].analyses_deleted == 0  # old one is imaging

    def test_rules_persist_in_admin_config(self, dm):
        dm.maintenance.add_purge_rule(PurgeRule("r1", max_age_s=10.0))
        rules = dm.maintenance.purge_rules()
        assert rules[0].name == "r1" and rules[0].max_age_s == 10.0

    def test_scrub_orphan_files(self, dm):
        archive = dm.io.storage.archive("main")
        archive.store("orphan.bin", b"lost")
        item = dm.io.store_payload("kept.bin", b"kept")
        dm.io.names.register_file("item:kept", item.archive_id, item.rel_path)
        removed = dm.maintenance.scrub_orphan_files("main")
        assert removed == 1
        assert archive.exists("kept.bin")
        assert not archive.exists("orphan.bin")


class TestAnimationStrategy:
    def test_animation_commits_multi_frame_product(self, tmp_path):
        from repro.core import Hedc

        hedc = Hedc.create(tmp_path / "h")
        hedc.ingest_observation(duration_s=240.0, seed=17, unit_target_photons=10**6)
        user = hedc.register_user("u", "pw")
        event = hedc.events()[0]
        request = hedc.analyze(user, event["hle_id"], "animation",
                               {"n_frames": 4, "n_pixels": 12})
        assert request.phase is Phase.COMMITTED, request.error
        stored = hedc.dm.semantic.get_analysis(user, request.ana_id)
        assert stored["n_images"] == 4
        assert "animation" in stored["notes"]
        images = hedc.dm.io.names.resolve_files(f"ana:{request.ana_id}", role="image")
        assert len(images) == 4

    def test_animation_validates_frames(self, tmp_path):
        from repro.core import Hedc

        hedc = Hedc.create(tmp_path / "h")
        hedc.ingest_observation(duration_s=240.0, seed=17, unit_target_photons=10**6)
        user = hedc.register_user("u", "pw")
        event = hedc.events()[0]
        request = hedc.analyze(user, event["hle_id"], "animation", {"n_frames": 1})
        assert request.phase is Phase.FAILED


class TestStreamCorderUpload:
    def test_offline_result_uploaded_and_published(self, dm, tmp_path):
        from repro.rhessi import TelemetryGenerator, package_units, standard_day_plan
        from repro.streamcorder import StreamCorder

        plan = standard_day_plan(duration=240.0, seed=17, n_flares=1, n_bursts=0, n_saa=0)
        photons = TelemetryGenerator(plan, seed=17).generate()
        units = package_units(photons, tmp_path / "in", unit_target_photons=10**6)
        for unit in units:
            dm.process.load_raw_unit(unit, "main")
        alice = dm.users.create_user("alice", "pw", group="scientist")
        hle = dm.semantic.find_hles(alice)[0]

        corder = StreamCorder(dm, alice, tmp_path / "sc")
        local_photons = corder.fetch_unit(units[0].unit_id)
        ana_id = corder.upload_analysis(
            hle["hle_id"], "histogram",
            {"photons": local_photons, "attribute": "energy"},
            publish=True,
        )
        stored = dm.semantic.get_analysis(None, ana_id)  # publicly visible
        assert stored["algorithm"] == "streamcorder:histogram"
        assert stored["executed_on"] == "streamcorder"
        assert stored["n_images"] == 1

    def test_upload_requires_right(self, dm, tmp_path):
        from repro.streamcorder import StreamCorder

        guest = dm.users.create_user("guest", "pw", group="guest")
        alice = dm.users.create_user("alice", "pw", group="scientist")
        hle = dm.semantic.insert_hle(alice, {"start_time": 0.0, "end_time": 1.0,
                                             "public": True})
        corder = StreamCorder(dm, guest, tmp_path / "sc")
        import numpy as np
        from repro.rhessi import PhotonList

        photons = PhotonList(np.arange(5.0), np.full(5, 10.0), np.ones(5))
        with pytest.raises(AuthError):
            corder.upload_analysis(hle, "histogram", {"photons": photons})
