"""Failure-injection tests: compensation, recovery and degradation paths.

The paper's middle tier promises "interactions ... are self-recovering
and tolerate failure and restart" (§5.1) and workflows where
"compensating actions are taken if failures occur" (§5.2).  These tests
force those failures.
"""

import threading

import pytest

from repro.dm import DataManager, DmRouter, WorkflowError
from repro.filestore import ArchiveError, DiskArchive, StorageManager
from repro.metadb import Select
from repro.pl import (
    AnalysisRequest,
    Frontend,
    IdlServerManager,
    NoServerAvailable,
    Phase,
)
from repro.resil import ConnectionDropped, FaultInjector, use_injector
from repro.rhessi import TelemetryGenerator, package_units, standard_day_plan


class _CorruptingArchive(DiskArchive):
    """Flips a byte on store — a bad disk or a flaky transfer."""

    def store(self, rel_path, payload):
        corrupted = bytes([payload[0] ^ 0xFF]) + payload[1:]
        return super().store(rel_path, corrupted)


@pytest.fixture()
def unit(tmp_path):
    plan = standard_day_plan(duration=120.0, seed=23, n_flares=1, n_bursts=0, n_saa=0)
    photons = TelemetryGenerator(plan, seed=23).generate()
    return package_units(photons, tmp_path / "in", unit_target_photons=10**6)[0]


class TestLoadCompensation:
    def test_duplicate_unit_load_rejected_before_metadata(self, dm, unit):
        dm.process.load_raw_unit(unit, "main")
        archive = dm.io.storage.archive("main")
        files_before = len(archive.list_items())
        rows_before = len(dm.io.execute(Select("raw_units")))
        # A second load of the same unit collides on the read-only file
        # store before any metadata is written.
        with pytest.raises(Exception):
            dm.process.load_raw_unit(unit, "main")
        assert len(archive.list_items()) == files_before
        assert len(dm.io.execute(Select("raw_units"))) == rows_before

    def test_metadata_failure_after_store_removes_file(self, dm, unit):
        """The §5.2 compensation path: the file was stored, then the
        transaction failed — the stored file must be removed again."""
        # Poison the location table: the unit's rel_path is already
        # claimed, so register_file inside the load transaction will
        # violate the (archive, rel_path) unique constraint.
        dm.io.names.register_file(
            "item:poison", "main", f"raw/{unit.unit_id}.fits.gz"
        )
        archive = dm.io.storage.archive("main")
        with pytest.raises(Exception):
            dm.process.load_raw_unit(unit, "main")
        # Compensation removed the freshly stored file and rolled back
        # the raw_units tuple.
        assert not archive.exists(f"raw/{unit.unit_id}.fits.gz")
        assert dm.io.execute(Select("raw_units")) == []

    def test_load_fails_cleanly_when_archives_full(self, tmp_path, unit):
        database_dm = DataManager.standalone(tmp_path / "dm")
        # The only online archive is too small for the unit: no spill
        # target exists, the placement must fail, and no metadata may
        # have been written.
        small = DiskArchive("tiny", tmp_path / "tiny", capacity_bytes=64)
        database_dm.io.storage.register(small)
        database_dm.io.storage.archive("main").online = False
        with pytest.raises(ArchiveError):
            database_dm.process.load_raw_unit(unit, "tiny")
        assert database_dm.io.execute(Select("raw_units")) == []


class TestMigrationCompensation:
    def test_corrupt_copy_is_removed_and_source_kept(self, tmp_path):
        manager = StorageManager()
        good = DiskArchive("good", tmp_path / "good")
        bad = _CorruptingArchive("bad", tmp_path / "bad")
        manager.register(good)
        manager.register(bad)
        good.store("x", b"precious bits")
        with pytest.raises(ArchiveError, match="checksum"):
            manager.migrate("x", "good", "bad")
        # Compensation: the corrupt destination copy is gone,
        # the source copy survives.
        assert not bad.exists("x")
        assert good.retrieve("x") == b"precious bits"
        assert manager.migrations == []

    def test_relocation_stops_on_offline_destination(self, dm, unit, tmp_path):
        dm.process.load_raw_unit(unit, "main")
        cold = DiskArchive("cold", tmp_path / "cold")
        dm.io.storage.register(cold)
        dm.io.names.register_archive("cold", str(cold.root))
        cold.online = False
        with pytest.raises(WorkflowError):
            dm.process.relocate_archive("main", "cold")
        # Source data still reachable.
        photons = dm.process.load_photons(unit.unit_id)
        assert len(photons) == unit.n_photons


class TestPlFaultTolerance:
    def test_request_survives_single_interpreter_crash(self, dm, unit, tmp_path):
        dm.process.load_raw_unit(unit, "main")
        alice = dm.users.create_user("alice", "pw", group="scientist")
        hle = dm.semantic.find_hles(alice)[0]
        crashes = {"left": 1}

        def crash_once():
            if crashes["left"] > 0:
                crashes["left"] -= 1
                raise OSError("interpreter died")

        manager = IdlServerManager("node", n_servers=1, fault_hook=crash_once)
        manager.start_all()
        frontend = Frontend(dm, manager)
        request = frontend.run(AnalysisRequest(alice, hle["hle_id"], "histogram", {}))
        assert request.phase is Phase.COMMITTED, request.error
        assert manager.recoveries >= 1

    def test_persistent_crash_fails_request_not_system(self, dm, unit):
        dm.process.load_raw_unit(unit, "main")
        alice = dm.users.create_user("alice", "pw", group="scientist")
        hle = dm.semantic.find_hles(alice)[0]

        def always_crash():
            raise OSError("dead interpreter")

        manager = IdlServerManager("node", n_servers=1, fault_hook=always_crash)
        manager.start_all()
        frontend = Frontend(dm, manager)
        request = frontend.run(AnalysisRequest(alice, hle["hle_id"], "histogram", {}))
        assert request.phase is Phase.FAILED
        # The manager itself is still serviceable after a restart cycle.
        assert manager.n_servers == 1

    def test_no_server_available_when_all_stopped(self):
        manager = IdlServerManager("node", n_servers=1)
        # never started
        with pytest.raises(NoServerAvailable):
            manager.invoke("1 + 1")

    def test_failed_request_leaves_no_analysis_tuple(self, dm, unit):
        dm.process.load_raw_unit(unit, "main")
        alice = dm.users.create_user("alice", "pw", group="scientist")
        hle = dm.semantic.find_hles(alice)[0]
        manager = IdlServerManager("node", n_servers=1)
        manager.start_all()
        frontend = Frontend(dm, manager)
        request = frontend.run(
            AnalysisRequest(alice, hle["hle_id"], "animation", {"n_frames": 1})
        )
        assert request.phase is Phase.FAILED
        assert dm.semantic.analyses_for_hle(alice, hle["hle_id"]) == []


class TestSessionEviction:
    def test_lru_user_evicted_at_capacity(self):
        from repro.dm import SessionCache
        from repro.security import User

        cache = SessionCache(max_users=2)
        users = [User(i, f"u{i}", "user", frozenset({"browse"})) for i in range(3)]
        first = cache.create(users[0], "hle", "ip")
        cache.create(users[1], "hle", "ip")
        cache.create(users[2], "hle", "ip")  # evicts the LRU user
        assert cache.by_cookie(first.cookie) is None


class TestRouterUnderConcurrency:
    def test_parallel_calls_balance_and_complete(self, tmp_path):
        dm0 = DataManager.standalone(tmp_path / "n0")
        dm1 = DataManager(dm0.io.default_database, dm0.io.storage,
                          node_name="dm1", install_schema=False)
        router = DmRouter()
        router.add_node(dm0)
        router.add_node(dm1)
        errors = []
        counted = {"n": 0}
        lock = threading.Lock()

        def worker():
            try:
                for _call in range(20):
                    router.call(lambda node: node.io.execute(Select("hle")))
                    with lock:
                        counted["n"] += 1
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert counted["n"] == 120
        assert router.stats(0).calls + router.stats(1).calls == 120
        assert router.stats(0).in_flight == 0
        assert router.stats(1).in_flight == 0


class TestMultiNodeIdAllocation:
    def test_two_nodes_never_collide_on_ids(self, tmp_path):
        """Two DM nodes over one resource tier (§7.3) insert HLEs
        concurrently; the shared atomic allocator prevents PK collisions."""
        dm0 = DataManager.standalone(tmp_path / "n0")
        dm1 = DataManager(dm0.io.default_database, dm0.io.storage,
                          node_name="dm1", install_schema=False)
        alice = dm0.users.create_user("alice", "pw", group="scientist")
        errors = []

        def worker(node):
            try:
                for index in range(30):
                    node.semantic.insert_hle(
                        alice, {"start_time": float(index), "end_time": float(index + 1)}
                    )
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(node,))
                   for node in (dm0, dm1)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        rows = dm0.io.execute(Select("hle"))
        assert len(rows) == 60
        assert len({row["hle_id"] for row in rows}) == 60


class TestWebDegradation:
    def test_internal_errors_become_500_pages(self, dm):
        from repro.web import HttpRequest, WebServer

        server = WebServer(dm)
        response = server.handle(HttpRequest.get("/hedc/hle?id=424242"))
        assert response.status == 500
        assert "not found" in response.text
        # The server keeps serving afterwards.
        assert server.handle(HttpRequest.get("/hedc/catalogs")).status == 200

    def test_best_effort_synoptic_with_every_archive_down(self):
        from repro.synoptic import SynopticArchive, SynopticSearch

        search = SynopticSearch()
        for index in range(3):
            archive = SynopticArchive(f"dead{index}", failure_rate=1.0, seed=index)
            archive.populate("X", 0.0, 100.0, cadence_s=10.0)
            search.register(archive)
        outcome = search.search(0.0, 100.0)
        assert outcome.total_records == 0
        assert len(outcome.archives_failed) == 3


CHAOS_SEED = 2003


@pytest.mark.chaos
class TestSeededChaos:
    """Seeded chaos: ~5% fault rates across every tier, a mixed
    browse + analysis workload, and three invariants — every operation
    eventually succeeds, no stored data is corrupted, and the resilience
    machinery (retries, recoveries, failover, shedding) demonstrably did
    the surviving.
    """

    def test_mixed_workload_survives_five_percent_faults(self, tmp_path):
        from repro.core import Hedc

        hedc = Hedc.create(tmp_path / "hedc")
        hedc.ingest_observation(duration_s=240.0, seed=13,
                                unit_target_photons=200_000)
        user = hedc.register_user("chaos", "pw")
        events = hedc.events(user)
        assert events

        injector = FaultInjector(seed=CHAOS_SEED)
        injector.inject("metadb.statement", rate=0.05)
        injector.inject("filestore.read", rate=0.05)
        injector.inject("filestore.corrupt", rate=0.05, error=None,
                        corrupt=True)
        injector.inject("idl.crash", rate=0.05)
        injector.inject("web.connection_drop", rate=0.05,
                        error=ConnectionDropped)

        def eventually(operation, tries=10):
            last = None
            for _ in range(tries):
                try:
                    outcome = operation()
                except Exception as exc:
                    last = exc
                    continue
                if outcome is not None:
                    return outcome
            raise AssertionError(f"never succeeded under chaos: {last}")

        with use_injector(injector):
            client = hedc.thin_client()
            assert eventually(
                lambda: client.login("chaos", "pw") or None
            )
            committed = 0
            for event in events:
                for algorithm in ("histogram", "lightcurve"):
                    def analysis(hle_id=event["hle_id"], algo=algorithm):
                        request = hedc.analyze(user, hle_id, algo,
                                               {"n_bins": 16})
                        return (request
                                if request.phase is Phase.COMMITTED else None)

                    assert eventually(analysis)
                    committed += 1
            browses = 0
            for _round in range(3):
                for event in events:
                    def browse(hle_id=event["hle_id"]):
                        result = client.browse_hle(hle_id)
                        return result if result.page_bytes > 0 else None

                    assert eventually(browse)
                    browses += 1

        # The chaos actually happened...
        stats = injector.stats()
        assert sum(point["fired"] for point in stats.values()) > 0
        # ...and the resilience machinery absorbed it: the DM's read
        # retries, the client's reconnects, and/or the PL's crash
        # recoveries saw action.
        retries = hedc.obs.counter("resil.retries", policy="dm.read").value
        reconnects = hedc.obs.counter("resil.retries",
                                      policy="client.reconnect").value
        assert retries + reconnects + hedc.idl.recoveries > 0
        assert committed == 2 * len(events) and browses == 3 * len(events)

        # Zero corruption: with faults cleared, every recorded checksum
        # still matches the on-media bytes.
        injector.clear()
        assert hedc.dm.io.storage.verify_recorded() == []

    def test_partition_trips_breakers_and_web_sheds(self, tmp_path):
        """A fully partitioned resource tier: reads fail over, breakers
        trip, the web tier sheds with 503 + Retry-After, and the system
        recovers when the partition heals."""
        import time

        from repro.metadb import Database, ReplicatedDatabase
        from repro.web import HttpRequest, WebServer

        primary = Database(name="p")
        replicated = ReplicatedDatabase(primary, breaker_cooldown_s=0.2)
        storage = StorageManager(scratch_dir=tmp_path / "scratch")
        storage.register(DiskArchive("main", tmp_path / "archive"))
        dm = DataManager(replicated, storage)
        dm.io.names.ensure_archive("main", str(tmp_path / "archive"))
        replicated.add_replica()
        server = WebServer(dm)

        injector = FaultInjector(seed=CHAOS_SEED)
        injector.inject("metadb.replica.p", rate=1.0)
        injector.inject("metadb.replica.p-r1", rate=1.0)
        shed = server.obs.counter("web.shed", server=server.name,
                                  route="/hedc/catalogs")
        with use_injector(injector):
            statuses = [
                server.handle(HttpRequest.get("/hedc/catalogs")).status
                for _ in range(6)
            ]
            assert 503 in statuses
            response = server.handle(HttpRequest.get("/hedc/catalogs"))
            assert response.status == 503
            assert int(response.headers["Retry-After"]) >= 1
        assert shed.value > 0
        assert sum(b.trips for b in replicated.breakers.values()) >= 2

        # Partition healed: after the cooldown the breakers half-open,
        # the probes succeed, and service restores without operator action.
        time.sleep(0.25)
        assert server.handle(HttpRequest.get("/hedc/catalogs")).status == 200

    def test_stale_product_served_degraded_while_idl_down(self, tmp_path):
        """Stale-while-degraded: a warm product whose calibration epoch
        has moved on is still served — marked ``degraded`` — when the
        whole IDL pool is down and its breaker is open, instead of
        failing the request outright."""
        from repro.core import Hedc
        from repro.resil import BreakerState

        hedc = Hedc.create(tmp_path / "hedc")
        hedc.ingest_observation(duration_s=240.0, seed=13,
                                unit_target_photons=200_000)
        user = hedc.register_user("chaos", "pw")
        event = hedc.events(user)[0]

        # Warm the product cache with a committed analysis ...
        warmed = hedc.analyze(user, event["hle_id"], "histogram",
                              {"n_bins": 16})
        assert warmed.phase is Phase.COMMITTED, warmed.error
        # ... then make it stale: a new calibration version bumps the
        # DM's cache epoch, so a fresh lookup now misses.
        hedc.dm.process.publish_calibration((1.01,) * 9, (0.0,) * 9,
                                            note="mid-mission recal")

        injector = FaultInjector(seed=CHAOS_SEED)
        # Rate 1.0 is deterministic: every IDL invocation crashes, so
        # the pool's final outcomes are all failures.
        injector.inject("idl.crash", rate=1.0)
        breaker = hedc.idl.breaker
        with use_injector(injector):
            # Distinct forced probes (cache bypassed) fail until the
            # pool breaker accumulates enough outcomes to trip.
            probes = 0
            while breaker.state is not BreakerState.OPEN:
                probe = hedc.analyze(
                    user, event["hle_id"], "histogram",
                    {"n_bins": 16, "probe": probes, "force": True})
                assert probe.phase is Phase.FAILED
                probes += 1
                assert probes <= 3 * breaker.min_calls, "breaker never tripped"
            invocations = hedc.idl.stats()["invocations"]

            # The warmed-but-stale request is served, degraded, with the
            # IDL tier never touched.
            served = hedc.analyze(user, event["hle_id"], "histogram",
                                  {"n_bins": 16})
            assert served.phase is Phase.COMMITTED
            assert served.ana_id == warmed.ana_id
            assert served.parameters.get("served_from_cache") is True
            assert served.parameters.get("degraded") is True
            assert hedc.idl.stats()["invocations"] == invocations

            # A request with no cached product has nothing to fall back
            # on: it fails fast on the open breaker.
            cold = hedc.analyze(user, event["hle_id"], "lightcurve", {})
            assert cold.phase is Phase.FAILED

        # Chaos cleared and breaker cooled down: full service resumes.
        injector.clear()
        breaker.reset()
        fresh = hedc.analyze(user, event["hle_id"], "histogram",
                             {"n_bins": 16, "force": True})
        assert fresh.phase is Phase.COMMITTED, fresh.error

    def test_shard_killed_mid_scatter_degrades_one_time_range(self):
        """One catalog shard dies mid-scatter: queries over the other
        time ranges still succeed in full, the affected range comes back
        as a typed :class:`PartialResult` naming the missing range, and
        the shard's breaker trips so later scatters skip it cheaply."""
        from repro.metadb import Between, Comparison, Insert
        from repro.resil import BreakerState
        from repro.schema import install_all
        from repro.shard import PartialResult, ShardedDatabase

        sharded = ShardedDatabase(boundaries=(100.0, 200.0), name="chaos",
                                  breaker_cooldown_s=60.0)
        install_all(sharded)
        sharded.execute(Insert("admin_users", {
            "user_id": 1, "login": "chaos", "password_hash": "x",
        }))
        for index, start in enumerate(
                [10.0, 50.0, 110.0, 150.0, 210.0, 250.0], start=1):
            sharded.execute(Insert("hle", {
                "hle_id": index, "item_id": f"hle:{index}", "owner_id": 1,
                "start_time": start, "end_time": start + 1.0,
            }))

        injector = FaultInjector(seed=CHAOS_SEED)
        injector.inject("metadb.shard.1.statement", rate=1.0)
        with use_injector(injector):
            for _round in range(4):
                rows = sharded.execute(Select("hle"))
                assert isinstance(rows, PartialResult)
                assert [m["shard_id"] for m in rows.missing_shards] == [1]
                assert rows.missing_shards[0] == {
                    "shard_id": 1, "low": 100.0, "high": 200.0,
                }
                # Both healthy time ranges answered in full.
                assert {row["hle_id"] for row in rows} == {1, 2, 5, 6}
            # Healthy ranges are entirely unaffected (pruned routes never
            # touch the dead shard).
            early = sharded.execute(
                Select("hle", where=Comparison("start_time", "<", 100.0)))
            assert not isinstance(early, PartialResult)
            assert len(early) == 2
            late = sharded.execute(
                Select("hle", where=Comparison("start_time", ">=", 200.0)))
            assert not isinstance(late, PartialResult)
            # The dead range itself degrades to a typed empty result.
            dead = sharded.execute(
                Select("hle", where=Between("start_time", 100.0, 199.0)))
            assert isinstance(dead, PartialResult) and len(dead) == 0
        # The repeated failures tripped the shard's own breaker; the
        # injected chaos demonstrably happened.
        assert sharded.breakers[1].state is BreakerState.OPEN
        assert injector.stats()["metadb.shard.1.statement"]["fired"] > 0
        assert sharded.degraded_count >= 5

    def test_killed_shard_fires_fast_burn_alert_and_clears_on_rejoin(self, tmp_path):
        """The PR-10 observability loop closed end to end: a killed shard
        burns the data-read-completeness SLO, the **fast** window fires a
        burn-rate alert whose attributed cause names the dead shard and
        its range, and after the shard rejoins the alert clears — only
        after the hysteresis hold, never on the first good sample."""
        import time

        from repro.metadb import Insert
        from repro.obs import Observability, Slo
        from repro.resil import BreakerState
        from repro.schema import install_all
        from repro.shard import PartialResult, ShardedDatabase

        obs = Observability(name="chaos6")
        sharded = ShardedDatabase(boundaries=(100.0, 200.0), name="chaos6",
                                  path=tmp_path / "cat", obs=obs,
                                  breaker_cooldown_s=0.05)
        install_all(sharded)
        sharded.execute(Insert("admin_users", {
            "user_id": 1, "login": "chaos", "password_hash": "x",
        }))
        for index, start in enumerate(
                [10.0, 50.0, 110.0, 150.0, 210.0, 250.0], start=1):
            sharded.execute(Insert("hle", {
                "hle_id": index, "item_id": f"hle:{index}", "owner_id": 1,
                "start_time": start, "end_time": start + 1.0,
            }))
        # Wire the rollup exactly as WebServer does, minus the web tier:
        # health reads the shard report, alerts resolve causes from health.
        obs.health.add_source("shard", sharded.shard_report)
        obs.slo.cause_resolver = obs.health.attributed_cause
        obs.slo.define(Slo(
            name="data-read-completeness", kind="ratio", objective=0.9,
            bad_family="metadb.shard.degraded",
            total_family="metadb.shard.route",
            fast_window_s=5.0, slow_window_s=10.0,
            fast_burn_threshold=2.0, slow_burn_threshold=1000.0,
            clear_burn_threshold=1.0, clear_after_s=2.0, min_events=3,
        ))
        collector = obs.collector
        clock = {"now": 0.0}

        def tick():
            clock["now"] += 1.0
            collector.sample_once(now=clock["now"])

        tick()  # baseline sample: setup-time route counts become history
        for _round in range(5):
            assert not isinstance(sharded.execute(Select("hle")), PartialResult)
            tick()
        assert obs.slo.active_alerts() == []

        injector = FaultInjector(seed=CHAOS_SEED)
        injector.inject("metadb.shard.1.statement", rate=1.0)
        with use_injector(injector):
            # Fail until the shard breaker trips — the cause must already
            # be attributable when the alert fires.
            for _attempt in range(30):
                assert isinstance(sharded.execute(Select("hle")), PartialResult)
                if sharded.breakers[1].state is BreakerState.OPEN:
                    break
            assert sharded.breakers[1].state is BreakerState.OPEN
            for _round in range(2):
                assert isinstance(sharded.execute(Select("hle")), PartialResult)
                tick()
        fired = obs.slo.active_alerts()
        assert [(a["slo"], a["window"]) for a in fired] == [
            ("data-read-completeness", "fast"),
        ]
        assert "shard 1" in fired[0]["cause"]
        assert "100.0" in fired[0]["cause"]  # the degraded range is named
        events = obs.events.find("slo.alert_fired")
        assert events and "shard 1" in events[0].fields["cause"]

        # Rejoin: chaos off, cooldown elapses, the half-open probe closes
        # the breaker and scatters are whole again.
        time.sleep(0.06)
        rows = sharded.execute(Select("hle"))
        assert not isinstance(rows, PartialResult)
        assert sharded.breakers[1].state is BreakerState.CLOSED
        # Hysteresis: the burn falls to zero as the failure window ages
        # out, but the alert holds until it stays below the clear
        # threshold for clear_after_s of samples...
        for _round in range(5):
            assert not isinstance(sharded.execute(Select("hle")), PartialResult)
            tick()
        assert obs.slo.active_alerts(), "alert cleared without hysteresis hold"
        # ...and only then clears, emitting the recovery event.
        for _round in range(3):
            assert not isinstance(sharded.execute(Select("hle")), PartialResult)
            tick()
        assert obs.slo.active_alerts() == []
        assert obs.events.find("slo.alert_cleared")
        assert injector.stats()["metadb.shard.1.statement"]["fired"] > 0

    def test_replica_killed_mid_scatter_during_concurrent_split(self, tmp_path):
        """With ``replicas_per_shard >= 2`` a single replica's death is
        invisible: one shard's follower is killed mid-scatter while
        another shard splits concurrently (and lossy shipping chaos is
        armed); no read ever degrades to a :class:`PartialResult`, the
        dead copy rejoins by WAL-recovered log replay — not a re-clone —
        and anti-entropy then finds zero divergent ranges."""
        from repro.metadb import Insert
        from repro.schema import install_all
        from repro.shard import PartialResult, ShardedDatabase, split_shard

        sharded = ShardedDatabase(
            boundaries=(100.0,), name="chaos5", path=tmp_path / "cat",
            replicas_per_shard=2, breaker_cooldown_s=60.0,
        )
        install_all(sharded)
        sharded.execute(Insert("admin_users", {
            "user_id": 1, "login": "chaos", "password_hash": "x",
        }))
        for index, start in enumerate(
                [10.0, 30.0, 60.0, 90.0, 110.0, 150.0], start=1):
            sharded.execute(Insert("hle", {
                "hle_id": index, "item_id": f"hle:{index}", "owner_id": 1,
                "start_time": start, "end_time": start + 1.0,
            }))
        survivor_group = sharded._topology.dbs[1]   # keeps its replica
        victim = survivor_group.replicas[0].name

        injector = FaultInjector(seed=CHAOS_SEED)
        # Lossy shipping: dropped batches and lost acks at ~5%; the
        # LSN dedup and re-ship machinery must absorb both silently.
        injector.inject("repl.ship", rate=0.05)
        injector.inject("repl.ack", rate=0.05)

        split_errors = []

        def splitter():
            try:
                split_shard(sharded, 0, 50.0)
            except Exception as exc:  # pragma: no cover
                split_errors.append(exc)

        with use_injector(injector):
            from repro.metadb import Select as _Select

            split_thread = threading.Thread(target=splitter)
            split_thread.start()
            try:
                next_id = 7
                for round_index in range(30):
                    if round_index == 5:
                        # The follower dies mid-scatter, mid-split.
                        survivor_group.kill_replica(victim)
                    rows = sharded.execute(_Select("hle"))
                    assert not isinstance(rows, PartialResult)
                    assert len(rows) >= 6
                    # Writes keep landing on the dead copy's shard, so
                    # the rejoin below has real log entries to replay.
                    sharded.execute(Insert("hle", {
                        "hle_id": next_id, "item_id": f"hle:{next_id}",
                        "owner_id": 1, "start_time": 120.0 + next_id,
                        "end_time": 121.0 + next_id,
                    }))
                    next_id += 1
            finally:
                split_thread.join()
            assert not split_errors

            # Crash-consistent rejoin: the follower recovers from its own
            # WAL and catches up by replaying the shipped log — no full
            # re-clone.
            clones_before = survivor_group.full_clones
            result = survivor_group.rejoin_replica(victim)
            assert result["mode"] == "log_replay", result
            assert result["replayed_records"] > 0
            assert survivor_group.full_clones == clones_before

        # The chaos demonstrably happened...
        stats = injector.stats()
        assert stats["repl.ship"]["fired"] + stats["repl.ack"]["fired"] > 0
        # ...and anti-entropy proves byte-identity everywhere: zero
        # divergent ranges on every copy of every shard.
        injector.clear()
        for group in sharded._topology.dbs.values():
            group.ship()
            assert group.verify() == {
                replica.name: {} for replica in group.replicas
            }
        # The split completed under all of it.
        assert sharded.splits == 1
        rows = sharded.execute(Select("hle"))
        assert not isinstance(rows, PartialResult)
        assert len(rows) == 36
