"""Tests for the FITS subset: cards, HDUs, files, gzip."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.fits import (
    BLOCK_LENGTH,
    BinTableHDU,
    CARD_LENGTH,
    FitsError,
    FitsFile,
    Header,
    PrimaryHDU,
    format_card,
    parse_card,
    read,
    write,
)


class TestCards:
    def test_card_is_80_chars(self):
        assert len(format_card("SIMPLE", True)) == CARD_LENGTH
        assert len(format_card("END")) == CARD_LENGTH

    def test_value_round_trips(self):
        for value in (True, False, 42, -17, 3.5, 1.5e-9, "RHESSI", "it's"):
            keyword, parsed, _comment = parse_card(format_card("KEY", value))
            assert keyword == "KEY"
            if isinstance(value, float):
                assert parsed == pytest.approx(value)
            else:
                assert parsed == value

    def test_comment_round_trips(self):
        _kw, _value, comment = parse_card(format_card("NAXIS", 2, "number of axes"))
        assert comment == "number of axes"

    def test_long_keyword_rejected(self):
        with pytest.raises(FitsError):
            format_card("TOOLONGKEYWORD", 1)

    def test_wrong_card_length_rejected(self):
        with pytest.raises(FitsError):
            parse_card("SHORT")

    def test_fortran_double_exponent_parsed(self):
        card = ("BSCALE  = 1.5D3").ljust(80)
        _kw, value, _c = parse_card(card)
        assert value == 1500.0


class TestHeader:
    def test_set_replaces_existing_keyword(self):
        header = Header()
        header.set("TELESCOP", "A")
        header.set("TELESCOP", "B")
        assert header["TELESCOP"] == "B"
        assert len(header) == 1

    def test_comments_and_history_accumulate(self):
        header = Header()
        header.add_comment("one")
        header.add_comment("two")
        header.add_history("made by tests")
        assert header.comments() == ["one", "two"]
        assert header.history() == ["made by tests"]

    def test_getitem_raises_on_missing(self):
        with pytest.raises(KeyError):
            Header()["MISSING"]

    def test_serialized_header_is_block_aligned(self):
        header = Header()
        for index in range(50):  # force multiple blocks
            header.set(f"KEY{index}", index)
        payload = header.to_bytes()
        assert len(payload) % BLOCK_LENGTH == 0
        restored, offset = Header.from_bytes(payload)
        assert offset == len(payload)
        assert restored["KEY49"] == 49

    def test_truncated_header_rejected(self):
        with pytest.raises(FitsError):
            Header.from_bytes(b" " * 100)


class TestPrimaryHDU:
    @pytest.mark.parametrize("dtype", ["uint8", "int16", "int32", "int64", "float32", "float64"])
    def test_array_round_trip_all_dtypes(self, dtype):
        array = np.arange(24, dtype=dtype).reshape(4, 6)
        payload = PrimaryHDU(array).to_bytes()
        assert len(payload) % BLOCK_LENGTH == 0
        restored, _offset = PrimaryHDU.from_bytes(payload)
        assert restored.data.shape == (4, 6)
        assert np.array_equal(restored.data, array)

    def test_dataless_primary(self):
        payload = PrimaryHDU().to_bytes()
        restored, offset = PrimaryHDU.from_bytes(payload)
        assert restored.data is None
        assert offset == len(payload)

    def test_3d_array(self):
        array = np.arange(60, dtype=np.float32).reshape(3, 4, 5)
        restored, _offset = PrimaryHDU.from_bytes(PrimaryHDU(array).to_bytes())
        assert restored.data.shape == (3, 4, 5)
        assert np.allclose(restored.data, array)

    def test_extra_header_cards_survive(self):
        hdu = PrimaryHDU(np.zeros((2, 2), dtype=np.int32))
        hdu.header.set("TELESCOP", "RHESSI", "instrument name")
        restored, _offset = PrimaryHDU.from_bytes(hdu.to_bytes())
        assert restored.header["TELESCOP"] == "RHESSI"

    def test_unsupported_dtype_rejected(self):
        with pytest.raises(FitsError):
            PrimaryHDU(np.zeros(4, dtype=np.complex64)).to_bytes()


class TestBinTable:
    def test_mixed_column_round_trip(self):
        table = BinTableHDU(
            ["t", "e", "d", "label"],
            [
                np.linspace(0, 1, 7),
                np.arange(7, dtype=np.float32),
                np.arange(7, dtype=np.int32),
                np.array(["a", "bb", "ccc", "d", "e", "f", "g"]),
            ],
            name="PHOTONS",
        )
        restored, _offset = BinTableHDU.from_bytes(table.to_bytes())
        assert restored.name == "PHOTONS"
        assert np.allclose(restored.column("t"), table.column("t"))
        assert restored.column("d").dtype.kind == "i"
        assert list(restored.column("label")) == ["a", "bb", "ccc", "d", "e", "f", "g"]

    def test_int64_column(self):
        table = BinTableHDU(["big"], [np.array([2**40, -2**40])])
        restored, _offset = BinTableHDU.from_bytes(table.to_bytes())
        assert list(restored.column("big")) == [2**40, -2**40]

    def test_empty_table(self):
        table = BinTableHDU(["x"], [np.array([], dtype=np.float64)])
        restored, _offset = BinTableHDU.from_bytes(table.to_bytes())
        assert len(restored) == 0

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(FitsError):
            BinTableHDU(["a", "b"], [np.zeros(2), np.zeros(3)])

    def test_unknown_column_name_rejected(self):
        table = BinTableHDU(["a"], [np.zeros(2)])
        with pytest.raises(FitsError):
            table.column("missing")


class TestFitsFile:
    def test_multi_hdu_round_trip(self):
        image = PrimaryHDU(np.ones((3, 3), dtype=np.float32))
        table = BinTableHDU(["x"], [np.arange(5, dtype=np.int32)], name="DATA")
        fits_file = FitsFile([image, table])
        restored = FitsFile.from_bytes(fits_file.to_bytes())
        assert len(restored.hdus) == 2
        assert np.allclose(restored.primary.data, 1.0)
        assert list(restored.table("DATA").column("x")) == [0, 1, 2, 3, 4]

    def test_first_hdu_must_be_primary(self):
        table = BinTableHDU(["x"], [np.arange(2)])
        with pytest.raises(FitsError):
            FitsFile([table])

    def test_missing_table_name_raises(self):
        fits_file = FitsFile([PrimaryHDU()])
        with pytest.raises(FitsError):
            fits_file.table("NOPE")

    def test_gzip_write_read(self, tmp_path):
        fits_file = FitsFile([PrimaryHDU(np.arange(100, dtype=np.float64).reshape(10, 10))])
        plain_path = tmp_path / "plain.fits"
        gz_path = tmp_path / "packed.fits.gz"
        plain_size = write(plain_path, fits_file)
        gz_size = write(gz_path, fits_file)
        assert gz_size < plain_size
        assert np.allclose(read(gz_path).primary.data, read(plain_path).primary.data)

    def test_gzip_write_is_deterministic(self, tmp_path):
        fits_file = FitsFile([PrimaryHDU(np.zeros((4, 4), dtype=np.int32))])
        write(tmp_path / "a.fits.gz", fits_file)
        write(tmp_path / "b.fits.gz", fits_file)
        assert (tmp_path / "a.fits.gz").read_bytes() == (tmp_path / "b.fits.gz").read_bytes()


class TestFitsProperties:
    @given(
        values=st.lists(
            st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), min_size=1, max_size=64
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_float64_table_column_exact_round_trip(self, values):
        table = BinTableHDU(["v"], [np.array(values, dtype=np.float64)])
        restored, _offset = BinTableHDU.from_bytes(table.to_bytes())
        assert np.array_equal(restored.column("v"), np.array(values))

    @given(st.integers(min_value=1, max_value=40), st.integers(min_value=1, max_value=40))
    @settings(max_examples=30, deadline=None)
    def test_image_shape_preserved(self, rows, columns):
        array = np.random.default_rng(0).integers(0, 255, size=(rows, columns)).astype(np.int32)
        restored, _offset = PrimaryHDU.from_bytes(PrimaryHDU(array).to_bytes())
        assert restored.data.shape == (rows, columns)
        assert np.array_equal(restored.data, array)
