"""Integration tests across tiers, driven through the Hedc facade."""

import pytest

from repro import Hedc
from repro.pl import Phase


class TestIngestAndBrowse:
    def test_ingest_report(self, populated_hedc):
        events = populated_hedc.events()
        assert events
        assert all(event["public"] for event in events)

    def test_standard_catalog_populated_at_load(self, populated_hedc):
        members = populated_hedc.catalog_events("standard")
        assert len(members) == len(populated_hedc.events())

    def test_events_filtered_by_kind(self, populated_hedc):
        flares = populated_hedc.events(kind="flare")
        assert flares
        assert all(event["kind"] == "flare" for event in flares)

    def test_catalog_array_over_events(self, populated_hedc):
        array = populated_hedc.catalog_array(["start_time", "peak_rate"])
        assert len(array) == len(populated_hedc.events())


class TestAnalyzeAndShare:
    def test_full_collaboration_flow(self, tmp_path):
        """Scientist analyzes, publishes; colleague reuses (§3.5)."""
        hedc = Hedc.create(tmp_path / "h")
        hedc.ingest_observation(duration_s=240.0, seed=17, unit_target_photons=10**6)
        alice = hedc.register_user("alice", "a-pw")
        bob = hedc.register_user("bob", "b-pw")
        event = hedc.events()[0]

        request = hedc.analyze(alice, event["hle_id"], "lightcurve", publish=True)
        assert request.phase is Phase.COMMITTED

        # Bob finds the published analysis instead of recomputing.
        existing = hedc.dm.semantic.find_existing_analysis(
            bob, event["hle_id"], "lightcurve"
        )
        assert existing is not None
        assert existing["ana_id"] == request.ana_id

        # The extended catalog now references the event.
        extended = hedc.catalog_events("extended")
        assert event["hle_id"] in {member["hle_id"] for member in extended}

    def test_estimate_then_analyze(self, tmp_path):
        hedc = Hedc.create(tmp_path / "h")
        hedc.ingest_observation(duration_s=240.0, seed=17, unit_target_photons=10**6)
        user = hedc.register_user("u", "pw")
        event = hedc.events()[0]
        request = hedc.analyze(user, event["hle_id"], "histogram", estimate=True)
        assert request.plan is not None
        assert request.phase is Phase.COMMITTED

    def test_login_round_trip(self, populated_hedc):
        user = populated_hedc.login("reader", "reader-pw")
        assert user.login == "reader"


class TestWebIntegration:
    def test_thin_client_browse_sequence(self, populated_hedc):
        client = populated_hedc.thin_client()
        assert client.login("reader", "reader-pw")
        event = populated_hedc.events()[0]
        result = client.browse_hle(event["hle_id"])
        assert result.page_bytes > 0
        assert result.n_requests >= 1


class TestSynopticIntegration:
    def test_context_search_around_event(self, tmp_path):
        hedc = Hedc.create(tmp_path / "h")
        hedc.ingest_observation(duration_s=240.0, seed=17, unit_target_photons=10**6)
        hedc.enable_synoptic(mission_end_s=600.0)
        event = hedc.events()[0]
        outcome = hedc.synoptic_context(event["hle_id"], margin_s=120.0)
        assert outcome.total_records > 0

    def test_synoptic_requires_enable(self, populated_hedc):
        with pytest.raises(RuntimeError):
            populated_hedc.synoptic_context(1)


class TestScaling:
    def test_add_dm_node_shares_database(self, tmp_path):
        hedc = Hedc.create(tmp_path / "h")
        hedc.ingest_observation(duration_s=240.0, seed=17, unit_target_photons=10**6)
        node = hedc.add_dm_node()
        assert hedc.router.n_nodes == 2
        # The new node sees the same data through the shared resource tier.
        events_via_node = node.semantic.find_hles(None)
        assert len(events_via_node) == len(hedc.events())

    def test_stats_aggregates_all_tiers(self, populated_hedc):
        stats = populated_hedc.stats()
        assert {"dm", "frontend", "idl", "web"} <= set(stats)


class TestChangeAbsorption:
    """The paper's headline: the system absorbs change (§3.1)."""

    def test_recalibration_end_to_end(self, tmp_path):
        hedc = Hedc.create(tmp_path / "h")
        hedc.ingest_observation(duration_s=240.0, seed=17, unit_target_photons=10**6)
        from repro.metadb import Select

        unit = hedc.dm.io.execute(Select("raw_units"))[0]
        hedc.dm.process.publish_calibration((1.03,) * 9, (0.1,) * 9, note="v2")
        new_unit_id = hedc.dm.process.recalibrate_unit(unit["unit_id"], "main")
        assert new_unit_id != unit["unit_id"]
        # Old and new photon lists differ only in energies.
        old = hedc.dm.process.load_photons(unit["unit_id"])
        new = hedc.dm.process.load_photons(new_unit_id)
        import numpy as np

        assert np.allclose(old.times, new.times)
        assert not np.allclose(old.energies, new.energies)

    def test_archive_relocation_transparent_to_clients(self, tmp_path):
        hedc = Hedc.create(tmp_path / "h")
        hedc.ingest_observation(duration_s=240.0, seed=17, unit_target_photons=10**6)
        user = hedc.register_user("u", "pw")
        event = hedc.events()[0]
        from repro.filestore import DiskArchive

        cold = DiskArchive("cold", tmp_path / "cold")
        hedc.dm.io.storage.register(cold)
        hedc.dm.io.names.register_archive("cold", str(cold.root))
        hedc.dm.process.relocate_archive("main", "cold")
        # Analyses keep working: data reachable through updated mapping.
        request = hedc.analyze(user, event["hle_id"], "histogram")
        assert request.phase is Phase.COMMITTED, request.error

    def test_new_analysis_type_via_strategy(self, tmp_path):
        hedc = Hedc.create(tmp_path / "h")
        hedc.ingest_observation(duration_s=240.0, seed=17, unit_target_photons=10**6)
        user = hedc.register_user("u", "pw")
        from repro.analysis import AnalysisProduct, render_series_pgm
        from repro.pl import AnalysisStrategy
        import numpy as np

        class HardnessStrategy(AnalysisStrategy):
            algorithm = "hardness"

            def execute(self, request, context):
                hle = context.fetch_hle(request.user, request.hle_id)
                request.hle_row = hle
                photons = context.load_photons_for(hle)
                context.check_existing(request.user, request.hle_id, self.algorithm)
                hard = photons.select_energy(25.0, 20_000.0)
                soft = photons.select_energy(3.0, 25.0)
                return len(hard) / max(len(soft), 1)

            def deliver(self, request, context):
                product = AnalysisProduct(self.algorithm, {})
                product.add_image(render_series_pgm(np.array([request.raw_result, 1.0])))
                product.summary = {"hardness": request.raw_result}
                return product

        hedc.frontend.register_strategy(HardnessStrategy())
        event = hedc.events()[0]
        request = hedc.analyze(user, event["hle_id"], "hardness")
        assert request.phase is Phase.COMMITTED, request.error
        stored = hedc.dm.semantic.get_analysis(user, request.ana_id)
        assert stored["algorithm"] == "hardness"
