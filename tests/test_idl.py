"""Tests for the IDL-like language and server."""

import numpy as np
import pytest

from repro.idl import (
    IdlResourceError,
    IdlRuntimeError,
    IdlServer,
    IdlServerError,
    IdlSyntaxError,
    Interpreter,
    ServerState,
    tokenize,
)


class TestLexer:
    def test_numbers(self):
        tokens = tokenize("x = 42 + 3.5 + 1e3 + 2.5d2")
        values = [token.value for token in tokens if token.kind == "NUMBER"]
        assert values == [42, 3.5, 1000.0, 250.0]

    def test_strings_with_escapes(self):
        tokens = tokenize("s = 'it''s' + \"q\"\"q\"")
        strings = [token.value for token in tokens if token.kind == "STRING"]
        assert strings == ["it's", 'q"q']

    def test_comments_stripped(self):
        tokens = tokenize("x = 1 ; this is a comment\ny = 2")
        assert not any(";" in str(token.value) for token in tokens)

    def test_ampersand_acts_as_newline(self):
        tokens = tokenize("x = 1 & y = 2")
        assert sum(1 for token in tokens if token.kind == "NEWLINE") >= 2

    def test_keywords_case_insensitive(self):
        tokens = tokenize("IF x THEN y = 1")
        assert tokens[0].kind == "KEYWORD" and tokens[0].value == "if"

    def test_unknown_character_rejected(self):
        with pytest.raises(IdlSyntaxError):
            tokenize("x = @")


class TestInterpreter:
    def test_arithmetic_and_precedence(self):
        interp = Interpreter()
        assert interp.run("1 + 2 * 3") == 7
        assert interp.run("(1 + 2) * 3") == 9
        assert interp.run("2 ^ 3 ^ 2") == 512  # right associative
        assert interp.run("7 / 2") == 3       # IDL integer division
        assert interp.run("7.0 / 2") == 3.5
        assert interp.run("7 mod 3") == 1

    def test_comparisons_and_boolean_logic(self):
        interp = Interpreter()
        assert interp.run("3 gt 2") is np.True_ or interp.run("3 gt 2") == True  # noqa: E712
        assert bool(interp.run("1 eq 1 and 2 lt 3"))
        assert not bool(interp.run("not (1 le 2)"))

    def test_array_literals_indexing_slicing(self):
        interp = Interpreter()
        assert interp.run("a = [10, 20, 30]\na[1]") == 20
        sliced = interp.run("a = [1, 2, 3, 4, 5]\na[1:3]")
        assert list(sliced) == [2, 3, 4]  # IDL slices are inclusive

    def test_index_assignment(self):
        interp = Interpreter()
        result = interp.run("a = fltarr(3)\na[1] = 9\na")
        assert list(result) == [0.0, 9.0, 0.0]

    def test_fancy_indexing_with_where(self):
        interp = Interpreter()
        result = interp.run("a = [5, 10, 15, 20]\na[where(a gt 8)]")
        assert list(result) == [10, 15, 20]

    def test_for_loop_inclusive(self):
        interp = Interpreter()
        assert interp.run("s = 0\nfor i = 1, 10 do s = s + i\ns") == 55

    def test_while_loop(self):
        interp = Interpreter()
        assert interp.run("i = 0\nwhile i lt 5 do i = i + 1\ni") == 5

    def test_if_else_with_blocks(self):
        interp = Interpreter()
        result = interp.run(
            "x = 3\n"
            "if x gt 2 then begin\n  y = 'big'\nend else begin\n  y = 'small'\nend\ny"
        )
        assert result == "big"

    def test_function_definition_and_return(self):
        interp = Interpreter()
        interp.run("function square, v\n  return, v * v\nend")
        assert interp.call("square", 6) == 36
        assert interp.run("square(5) + 1") == 26

    def test_procedure_and_print(self):
        interp = Interpreter()
        interp.run("pro greet, name\n  print, 'hello', name\nend\ngreet, 'world'")
        assert interp.printed == ["hello world"]

    def test_recursion(self):
        interp = Interpreter()
        interp.run(
            "function fact, n\n"
            "  if n le 1 then return, 1\n"
            "  return, n * fact(n - 1)\n"
            "end"
        )
        assert interp.call("fact", 6) == 720

    def test_builtin_array_functions(self):
        interp = Interpreter()
        assert interp.run("total(findgen(10))") == 45.0
        assert interp.run("n_elements(indgen(7))") == 7
        assert interp.run("max([3, 1, 4])") == 4.0
        assert interp.run("mean([2, 4])") == 3.0
        assert list(interp.run("reverse([1, 2, 3])")) == [3, 2, 1]

    def test_smooth_and_histogram_builtins(self):
        interp = Interpreter()
        smoothed = interp.run("smooth([0, 0, 9, 0, 0], 3)")
        assert smoothed[2] == pytest.approx(3.0)
        counts = interp.run("histogram([1, 1, 2, 5], 2)")
        assert counts.sum() == 4

    def test_undefined_variable_and_function_errors(self):
        interp = Interpreter()
        with pytest.raises(IdlRuntimeError):
            interp.run("y = nope + 1")
        with pytest.raises(IdlRuntimeError):
            interp.run("y = nope(1)")

    def test_division_by_zero_is_runtime_error(self):
        interp = Interpreter()
        with pytest.raises(IdlRuntimeError):
            interp.run("1 / 0")

    def test_step_budget_enforced(self):
        interp = Interpreter(step_budget=500)
        with pytest.raises(IdlResourceError):
            interp.run("i = 0\nwhile 1 do i = i + 1")

    def test_wrong_arity_rejected(self):
        interp = Interpreter()
        interp.run("pro one_arg, a\nend")
        with pytest.raises(IdlRuntimeError):
            interp.run("one_arg, 1, 2")

    def test_missing_end_rejected(self):
        with pytest.raises(IdlSyntaxError):
            Interpreter().run("pro broken, a\n  x = 1\n")

    def test_matrix_multiply(self):
        interp = Interpreter()
        interp.globals["m"] = np.eye(2)
        interp.globals["v"] = np.array([3.0, 4.0])
        assert list(interp.run("m ## v")) == [3.0, 4.0]


class TestIdlServer:
    def test_lifecycle(self):
        server = IdlServer("t0")
        assert server.state is ServerState.STOPPED
        server.start()
        assert server.state is ServerState.READY
        server.stop()
        assert server.state is ServerState.STOPPED

    def test_invoke_requires_ready(self):
        server = IdlServer("t1")
        with pytest.raises(IdlServerError):
            server.invoke("1 + 1")

    def test_invoke_returns_value_and_prints(self):
        server = IdlServer("t2")
        server.start()
        result = server.invoke("print, 'hi'\n2 + 2")
        assert result.ok and result.value == 4
        assert result.printed == ["hi"]

    def test_runtime_error_keeps_server_ready(self):
        server = IdlServer("t3")
        server.start()
        result = server.invoke("nope, 1")
        assert not result.ok
        assert server.state is ServerState.READY

    def test_resource_drain_crashes_server(self):
        server = IdlServer("t4", step_budget=1000)
        server.start()
        result = server.invoke("i = 0\nwhile 1 do i = i + 1")
        assert not result.ok and "resource drain" in result.error
        assert server.state is ServerState.CRASHED
        server.restart()
        assert server.state is ServerState.READY
        assert server.restarts == 1

    def test_deadline_timeout(self):
        server = IdlServer("t5")
        server.start()
        result = server.invoke("i = 0\nwhile 1 do i = i + 1", timeout_s=0.1)
        assert not result.ok
        assert server.state is ServerState.CRASHED

    def test_fault_hook_simulates_crash(self):
        calls = {"n": 0}

        def hook():
            calls["n"] += 1
            if calls["n"] == 1:
                raise OSError("interpreter segfault")

        server = IdlServer("t6", fault_hook=hook)
        server.start()
        first = server.invoke("1")
        assert not first.ok and server.state is ServerState.CRASHED
        server.restart()
        second = server.invoke("1")
        assert second.ok

    def test_async_invoke(self):
        server = IdlServer("t7")
        server.start()
        future = server.invoke_async("total(findgen(10))")
        assert future.result(timeout=10).value == 45.0

    def test_ssw_library_loaded(self, photons_small):
        server = IdlServer("t8")
        server.start()
        server.bind_photons(photons_small)
        result = server.invoke("h = flare_hardness(ph_energies)\nh ge 0")
        assert result.ok

    def test_hsi_builtins_match_kernels(self, photons_small):
        from repro.analysis import histogram as histogram_kernel

        server = IdlServer("t9")
        server.start()
        server.bind_photons(photons_small)
        result = server.invoke("hsi_histogram('energy', 32)")
        assert result.ok
        expected = histogram_kernel(photons_small, "energy", n_bins=32)
        assert np.array_equal(result.value, expected.counts)

    def test_hsi_select_narrows_bound_data(self, photons_small):
        server = IdlServer("t10")
        server.start()
        server.bind_photons(photons_small)
        result = server.invoke("hsi_select_energy(3.0, 10.0)")
        assert result.ok
        assert result.value < len(photons_small)

    def test_unbound_photons_is_clean_error(self):
        server = IdlServer("t11")
        server.start()
        result = server.invoke("hsi_lightcurve(4.0)")
        assert not result.ok
        assert "bind_photons" in result.error
        assert server.state is ServerState.READY
