"""The sharded catalog: topology, routing, differential correctness,
degradation, online split, DM integration, and the scaling projection.

The load-bearing property is *transparency*: a ShardedDatabase must be
indistinguishable from a single Database through ``execute()`` — same
rows, same order, same aggregates — while EXPLAIN and the route counters
prove pruned queries really skipped the non-matching shards.
"""

from __future__ import annotations

import random
import threading

import pytest

from repro.metadb import (
    Aggregate,
    Between,
    Comparison,
    Database,
    Delete,
    In,
    Insert,
    Join,
    Or,
    Select,
    Update,
)
from repro.resil import FaultInjector, use_injector
from repro.schema import install_all
from repro.shard import (
    HEDC_SHARD_CONFIG,
    PartialResult,
    ShardedDatabase,
    ShardError,
    ShardMap,
    ShardSpec,
    ShardUnavailable,
    route_partitioned,
)

DAY = 86_400.0
BOUNDS = (DAY, 2 * DAY, 3 * DAY)  # four observation-day shards


def _fresh_pair() -> tuple[Database, ShardedDatabase]:
    single = Database(name="single")
    install_all(single)
    sharded = ShardedDatabase(boundaries=BOUNDS, name="shardtest")
    install_all(sharded)
    return single, sharded


def _seed_users(*dbs) -> None:
    for db in dbs:
        db.execute(Insert("admin_users", {
            "user_id": 1, "login": "alice", "password_hash": "x",
        }))


def _event_rows(n: int, seed: int) -> list[dict]:
    """Deterministic events spread over four days; unique start_times so
    ORDER BY comparisons are tie-free, integer counts so sums are exact."""
    rng = random.Random(seed)
    times = rng.sample(range(0, int(4 * DAY)), n)
    rows = []
    for index, t in enumerate(times, start=1):
        rows.append({
            "hle_id": index,
            "item_id": f"hle:{index}",
            "owner_id": 1,
            "start_time": float(t),
            "end_time": float(t) + 60.0,
            "peak_rate": float(rng.randrange(1, 500)),
            "total_counts": rng.randrange(100, 10_000),
            "kind": rng.choice(["flare", "burst", "saa", None]),
            "created_at": 1000.0,
        })
    return rows


def _seed_events(dbs, n: int = 120, seed: int = 2003) -> list[dict]:
    rows = _event_rows(n, seed)
    for db in dbs:
        for row in rows:
            db.execute(Insert("hle", dict(row)))
    return rows


def _multiset(rows) -> list[str]:
    return sorted(repr(sorted(row.items(), key=lambda kv: kv[0])) for row in rows)


def _assert_same(single, sharded, select: Select, ordered: bool) -> None:
    expected = single.execute(select)
    actual = sharded.execute(select)
    assert not isinstance(actual, PartialResult)
    if ordered:
        assert list(actual) == list(expected), select
    else:
        assert _multiset(actual) == _multiset(expected), select


class TestShardMap:
    def test_boundaries_give_contiguous_open_ended_map(self):
        shard_map = ShardMap.from_boundaries(BOUNDS)
        assert len(shard_map) == 4
        assert shard_map.specs[0].low is None
        assert shard_map.specs[-1].high is None
        for left, right in zip(shard_map.specs, shard_map.specs[1:]):
            assert left.high == right.low

    def test_every_value_lands_on_exactly_one_shard(self):
        shard_map = ShardMap.from_boundaries(BOUNDS)
        for value in (-1e12, 0.0, DAY - 1, DAY, 2.5 * DAY, 3 * DAY, 1e12):
            owners = [spec for spec in shard_map if spec.covers(value)]
            assert len(owners) == 1
            assert owners[0] == shard_map.spec_for_value(value)

    def test_boundary_value_belongs_to_the_upper_shard(self):
        shard_map = ShardMap.from_boundaries(BOUNDS)
        assert shard_map.spec_for_value(DAY).shard_id == 1

    def test_range_and_value_lookup(self):
        shard_map = ShardMap.from_boundaries(BOUNDS)
        touched = shard_map.specs_for_range(DAY + 1, 2 * DAY - 1)
        assert [spec.shard_id for spec in touched] == [1]
        touched = shard_map.specs_for_range(None, DAY - 1)
        assert [spec.shard_id for spec in touched] == [0]
        touched = shard_map.specs_for_values([0.0, 3.5 * DAY])
        assert [spec.shard_id for spec in touched] == [0, 3]

    def test_invalid_maps_rejected(self):
        with pytest.raises(ShardError):
            ShardMap([])
        with pytest.raises(ShardError):
            ShardMap([ShardSpec(0, None, 10.0), ShardSpec(1, 20.0, None)])
        with pytest.raises(ShardError):
            ShardMap([ShardSpec(0, 0.0, 10.0), ShardSpec(1, 10.0, None)])

    def test_replace_models_a_split(self):
        shard_map = ShardMap.from_boundaries((DAY,))
        new_map = shard_map.replace(1, [
            ShardSpec(2, DAY, 2 * DAY), ShardSpec(3, 2 * DAY, None),
        ])
        assert [spec.shard_id for spec in new_map] == [0, 2, 3]
        assert len(shard_map) == 2  # the original is untouched


class TestRouting:
    shard_map = ShardMap.from_boundaries(BOUNDS)

    def test_equality_pins_one_shard(self):
        decision = route_partitioned(
            Comparison("start_time", "=", 2.5 * DAY), "start_time", self.shard_map
        )
        assert decision.kind == "pruned"
        assert decision.shard_ids == (2,)

    def test_in_list_straddling_a_boundary(self):
        decision = route_partitioned(
            In("start_time", [DAY - 1, DAY]), "start_time", self.shard_map
        )
        assert decision.kind == "pruned"
        assert decision.shard_ids == (0, 1)

    def test_open_ended_ranges_still_prune(self):
        decision = route_partitioned(
            Comparison("start_time", ">=", 2.5 * DAY), "start_time", self.shard_map
        )
        assert decision.kind == "pruned"
        assert decision.shard_ids == (2, 3)
        decision = route_partitioned(
            Comparison("start_time", "<", DAY), "start_time", self.shard_map
        )
        assert decision.shard_ids == (0,)

    def test_range_spanning_everything_is_scatter_not_pruned(self):
        decision = route_partitioned(
            Between("start_time", -DAY, 10 * DAY), "start_time", self.shard_map
        )
        assert decision.kind == "scatter"
        assert decision.shard_ids == (0, 1, 2, 3)

    def test_unrelated_and_disjunctive_predicates_scatter(self):
        for where in (
            None,
            Comparison("kind", "=", "flare"),
            Or([Comparison("start_time", "=", 1.0),
                Comparison("kind", "=", "flare")]),
        ):
            decision = route_partitioned(where, "start_time", self.shard_map)
            assert decision.kind == "scatter"


class TestPruningThroughExecute:
    def test_explain_plan_reports_the_route(self):
        _single, sharded = _fresh_pair()
        plan = sharded.explain_plan(
            Select("hle", where=Between("start_time", DAY + 1, DAY + 100))
        )
        assert plan["shard_route"] == {
            "kind": "pruned", "shards": [1], "n_shards": 4, "pruned": True,
        }
        plan = sharded.explain_plan(Select("hle"))
        assert plan["shard_route"]["pruned"] is False
        assert plan["shard_route"]["shards"] == [0, 1, 2, 3]
        assert "over 1/4 shards (pruned)" in sharded.explain(
            Select("hle", where=Comparison("start_time", "=", 0.0))
        )

    def test_pruned_read_skips_non_matching_shards(self):
        single, sharded = _fresh_pair()
        _seed_users(single, sharded)
        _seed_events([single, sharded], n=40)
        before = dict(sharded.reads_by_shard)
        rows = sharded.execute(
            Select("hle", where=Comparison("start_time", "<", DAY))
        )
        assert rows  # day one has events
        touched = {
            shard: count - before.get(shard, 0)
            for shard, count in sharded.reads_by_shard.items()
            if count != before.get(shard, 0)
        }
        assert set(touched) == {0}
        assert sharded.route_counts["pruned"] >= 1

    def test_broadcast_reads_touch_one_shard_round_robin(self):
        _single, sharded = _fresh_pair()
        _seed_users(sharded)
        for _ in range(8):
            assert len(sharded.execute(Select("admin_users"))) == 1
        assert sharded.route_counts["broadcast"] == 8
        # Round-robin spread the eight reads over the four shards.
        assert len(sharded.reads_by_shard) == 4

    def test_non_colocated_join_is_rejected(self):
        _single, sharded = _fresh_pair()
        with pytest.raises(ShardError, match="not co-located"):
            sharded.execute(Select(
                "hle", join=Join("raw_units", "source_unit", "unit_id"),
            ))


class TestDifferential:
    """Randomized differential: the sharded answer must equal the
    single-node answer — rows, order, and aggregates."""

    def test_randomized_queries_match_single_node(self):
        single, sharded = _fresh_pair()
        _seed_users(single, sharded)
        rows = _seed_events([single, sharded], n=120, seed=2003)
        rng = random.Random(77)
        times = sorted(row["start_time"] for row in rows)

        for _round in range(25):
            low = rng.choice(times)
            high = low + rng.choice([100.0, DAY / 2, DAY, 2 * DAY])
            picks = rng.sample(times, 5)
            ordered_select = Select(
                "hle",
                where=Between("start_time", low, high),
                order_by=[("start_time", rng.choice(["asc", "desc"]))],
                limit=rng.choice([None, 3, 10]),
                offset=rng.choice([0, 2]),
            )
            _assert_same(single, sharded, ordered_select, ordered=True)
            _assert_same(
                single, sharded,
                Select("hle", where=In("start_time", picks)), ordered=False,
            )
            _assert_same(
                single, sharded,
                Select("hle", where=Comparison("start_time", ">=", low),
                       order_by=[("start_time", "asc")], limit=7),
                ordered=True,
            )
            _assert_same(
                single, sharded,
                Select("hle", where=Between("start_time", low, high),
                       aggregates=[
                           Aggregate("count", "*", "n"),
                           Aggregate("sum", "total_counts", "total"),
                           Aggregate("avg", "total_counts", "mean"),
                           Aggregate("min", "start_time", "first"),
                           Aggregate("max", "start_time", "last"),
                       ]),
                ordered=True,
            )

        # Projections, GROUP BY, and the full unfiltered scan.
        _assert_same(
            single, sharded,
            Select("hle", columns=["hle_id", "kind"],
                   order_by=[("hle_id", "asc")]),
            ordered=True,
        )
        _assert_same(
            single, sharded,
            Select("hle", group_by=["kind"],
                   aggregates=[Aggregate("count", "*", "n"),
                               Aggregate("avg", "peak_rate", "rate")]),
            ordered=True,
        )
        _assert_same(single, sharded, Select("hle"), ordered=False)

    def test_aggregates_over_empty_match_single_node(self):
        single, sharded = _fresh_pair()
        select = Select("hle", aggregates=[
            Aggregate("count", "*", "n"),
            Aggregate("sum", "total_counts", "total"),
            Aggregate("avg", "total_counts", "mean"),
        ])
        assert sharded.execute(select) == single.execute(select)

    def test_co_partitioned_children_and_joins_match(self):
        single, sharded = _fresh_pair()
        _seed_users(single, sharded)
        rows = _seed_events([single, sharded], n=30)
        rng = random.Random(5)
        for index, parent in enumerate(rng.sample(rows, 10), start=1):
            ana = {
                "ana_id": index, "item_id": f"ana:{index}",
                "hle_id": parent["hle_id"], "owner_id": 1,
                "algorithm": "histogram", "created_at": 1000.0,
            }
            single.execute(Insert("ana", dict(ana)))
            sharded.execute(Insert("ana", dict(ana)))
        # Children landed on their parent's shard: per-shard FK integrity
        # implies the join works shard-locally.
        _assert_same(
            single, sharded,
            Select("ana", join=Join("hle", "hle_id", "hle_id")),
            ordered=False,
        )
        _assert_same(
            single, sharded,
            Select("ana", order_by=[("ana_id", "asc")]), ordered=True,
        )
        for spec in sharded.shard_map:
            shard_db = sharded.shard_db(spec.shard_id)
            parents = {row["hle_id"] for row in shard_db.table("hle").rows()}
            for child in shard_db.table("ana").rows():
                assert child["hle_id"] in parents

    def test_updates_and_deletes_match_single_node(self):
        single, sharded = _fresh_pair()
        _seed_users(single, sharded)
        _seed_events([single, sharded], n=60)
        update = Update("hle", {"kind": "reclassified"},
                        where=Between("start_time", 0.0, 2 * DAY))
        assert sharded.execute(update) == single.execute(update)
        delete = Delete("hle", where=Comparison("peak_rate", "<", 100.0))
        assert sharded.execute(delete) == single.execute(delete)
        _assert_same(single, sharded, Select("hle"), ordered=False)

    def test_update_may_not_move_rows_across_shards(self):
        _single, sharded = _fresh_pair()
        _seed_users(sharded)
        _seed_events([sharded], n=20)
        victim = sharded.execute(
            Select("hle", where=Comparison("start_time", "<", DAY), limit=1)
        )[0]
        with pytest.raises(ShardError, match="split/rebalance"):
            sharded.execute(Update(
                "hle", {"start_time": 3.5 * DAY},
                where=Comparison("hle_id", "=", victim["hle_id"]),
            ))

    def test_allocate_id_is_global_across_shards(self):
        _single, sharded = _fresh_pair()
        _seed_users(sharded)
        _seed_events([sharded], n=20)
        assert sharded.allocate_id("hle", "hle_id") == 21
        assert sharded.allocate_id("hle", "hle_id") == 22


class TestDegradation:
    def _dead_shard(self, **kwargs):
        kwargs.setdefault("breaker_cooldown_s", 0.05)
        sharded = ShardedDatabase(boundaries=BOUNDS, name="deg", **kwargs)
        install_all(sharded)
        _seed_users(sharded)
        _seed_events([sharded], n=40)
        return sharded

    def test_dead_shard_degrades_only_its_time_range(self):
        sharded = self._dead_shard()
        total = len(sharded.execute(Select("hle")))
        injector = FaultInjector(seed=2003)
        injector.inject("metadb.shard.2.statement", rate=1.0)
        with use_injector(injector):
            rows = sharded.execute(Select("hle"))
            assert isinstance(rows, PartialResult)
            assert not rows.complete
            assert [m["shard_id"] for m in rows.missing_shards] == [2]
            assert rows.missing_shards[0]["low"] == 2 * DAY
            # A pruned read over a healthy range is untouched: a plain,
            # complete result.
            healthy = sharded.execute(
                Select("hle", where=Comparison("start_time", "<", DAY))
            )
            assert not isinstance(healthy, PartialResult)
            # The dead range itself: typed degraded result, zero rows.
            dead = sharded.execute(
                Select("hle", where=Between("start_time", 2 * DAY, 2.5 * DAY))
            )
            assert isinstance(dead, PartialResult) and len(dead) == 0
        assert sharded.degraded_count >= 2
        assert sharded.breakers[2].state.value == "open"
        # Fault cleared and the breaker cooled down: full service restores
        # without operator action, nothing lost.
        import time

        time.sleep(0.06)
        recovered = sharded.execute(Select("hle"))
        assert not isinstance(recovered, PartialResult)
        assert len(recovered) == total

    def test_strict_mode_raises_instead_of_degrading(self):
        sharded = self._dead_shard(degraded_reads=False)
        injector = FaultInjector(seed=2003)
        injector.inject("metadb.shard.1.statement", rate=1.0)
        with use_injector(injector):
            with pytest.raises(ShardUnavailable) as excinfo:
                sharded.execute(Select("hle"))
            assert excinfo.value.shard_ids == (1,)

    def test_writes_never_degrade(self):
        sharded = self._dead_shard()
        total = len(sharded.execute(Select("hle")))
        injector = FaultInjector(seed=2003)
        injector.inject("metadb.shard.3.statement", rate=1.0)
        row = {
            "hle_id": 900, "item_id": "hle:900", "owner_id": 1,
            "start_time": 3.5 * DAY, "end_time": 3.5 * DAY + 1,
        }
        with use_injector(injector):
            with pytest.raises(Exception):
                sharded.execute(Insert("hle", dict(row)))
            # A write to a healthy shard still lands.
            row_ok = dict(row, hle_id=901, item_id="hle:901", start_time=10.0,
                          end_time=11.0)
            sharded.execute(Insert("hle", row_ok))
        assert len(sharded.execute(Select("hle"))) == total + 1

    def test_broadcast_reads_fail_over_to_healthy_shards(self):
        sharded = self._dead_shard()
        injector = FaultInjector(seed=2003)
        injector.inject("metadb.shard.0.statement", rate=1.0)
        injector.inject("metadb.shard.1.statement", rate=1.0)
        with use_injector(injector):
            for _ in range(6):
                assert len(sharded.execute(Select("admin_users"))) == 1


class TestOnlineSplit:
    def test_split_preserves_rows_and_ranges(self):
        _single, sharded = _fresh_pair()
        _seed_users(sharded)
        seeded = _seed_events([sharded], n=80)
        low_id, high_id = sharded.split(1, 1.5 * DAY)
        assert sharded.n_shards == 5
        assert [spec.shard_id for spec in sharded.shard_map] == \
            [0, low_id, high_id, 2, 3]
        rows = sharded.execute(Select("hle"))
        assert len(rows) == len(seeded)
        assert len({row["hle_id"] for row in rows}) == len(seeded)
        for spec in sharded.shard_map:
            for row in sharded.shard_db(spec.shard_id).table("hle").rows():
                assert spec.covers(row["start_time"]), spec.describe()
        assert sharded.splits == 1

    def test_split_point_must_be_inside_the_range(self):
        _single, sharded = _fresh_pair()
        with pytest.raises(ShardError, match="outside"):
            sharded.split(1, 5 * DAY)

    def test_split_under_concurrent_reads_and_writes(self):
        """The acceptance bar: an online split with readers and writers in
        flight loses nothing and duplicates nothing, and no read ever
        fails or degrades."""
        _single, sharded = _fresh_pair()
        _seed_users(sharded)
        seeded = _seed_events([sharded], n=150)
        stop = threading.Event()
        errors: list[Exception] = []
        written = []

        def reader():
            try:
                while not stop.is_set():
                    rows = sharded.execute(Select("hle"))
                    assert not isinstance(rows, PartialResult)
                    ids = [row["hle_id"] for row in rows]
                    assert len(ids) == len(set(ids)), "duplicated rows"
                    assert len(ids) >= len(seeded), "lost rows"
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        def writer():
            try:
                for index in range(60):
                    if stop.is_set():
                        break
                    hle_id = 10_000 + index
                    sharded.execute(Insert("hle", {
                        "hle_id": hle_id, "item_id": f"hle:{hle_id}",
                        "owner_id": 1,
                        "start_time": DAY + index * 7.0,
                        "end_time": DAY + index * 7.0 + 1,
                    }))
                    written.append(hle_id)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=reader) for _ in range(3)]
        threads.append(threading.Thread(target=writer))
        for thread in threads:
            thread.start()
        try:
            sharded.split(1, 1.5 * DAY)
        finally:
            stop.set()
            for thread in threads:
                thread.join()
        assert not errors
        rows = sharded.execute(Select("hle"))
        expected = {row["hle_id"] for row in seeded} | set(written)
        assert {row["hle_id"] for row in rows} == expected
        per_shard = sum(
            len(sharded.shard_db(spec.shard_id).table("hle"))
            for spec in sharded.shard_map
        )
        assert per_shard == len(expected)

    def test_rebalance_splits_the_heaviest_shard(self):
        _single, sharded = _fresh_pair()
        _seed_users(sharded)
        # Pile day two high so shard 1 is unambiguously the heaviest.
        rows = []
        for index in range(1, 61):
            rows.append({
                "hle_id": index, "item_id": f"hle:{index}", "owner_id": 1,
                "start_time": DAY + index * 60.0,
                "end_time": DAY + index * 60.0 + 1,
            })
        for row in rows:
            sharded.execute(Insert("hle", row))
        heavy_before = max(
            len(sharded.shard_db(spec.shard_id).table("hle"))
            for spec in sharded.shard_map
        )
        assert sharded.rebalance("hle") is not None
        heavy_after = max(
            len(sharded.shard_db(spec.shard_id).table("hle"))
            for spec in sharded.shard_map
        )
        assert heavy_after < heavy_before
        assert len(sharded.execute(Select("hle"))) == len(rows)

    def test_topology_survives_reopen(self, tmp_path):
        sharded = ShardedDatabase(boundaries=(DAY,), path=tmp_path / "db",
                                  name="persist")
        install_all(sharded)
        _seed_users(sharded)
        _seed_events([sharded], n=20)
        sharded.split(1, 2 * DAY)
        total = len(sharded.execute(Select("hle")))
        sharded.checkpoint()
        sharded.close()

        reopened = ShardedDatabase(path=tmp_path / "db", name="persist")
        assert reopened.n_shards == 3
        assert [spec.high for spec in reopened.shard_map] == \
            [DAY, 2 * DAY, None]
        assert len(reopened.execute(Select("hle"))) == total


class TestShardedHedc:
    def test_full_deployment_routes_through_the_shards(self, tmp_path):
        from repro.core import Hedc
        from repro.web import HttpRequest

        hedc = Hedc.create(tmp_path / "hedc",
                           shard_boundaries=(60.0, 120.0, 180.0))
        db = hedc.dm.io.default_database
        assert isinstance(db, ShardedDatabase)
        report = hedc.ingest_observation(duration_s=240.0, seed=13,
                                         unit_target_photons=200_000)
        assert report.n_events > 0
        hedc.register_user("alice", "pw")
        client = hedc.thin_client()
        client.login("alice", "pw")
        events = hedc.events()
        assert events
        page = client.browse_hle(events[0]["hle_id"])
        assert page.page_bytes > 0
        # Data really is spread over the time-range shards.
        populated = [
            spec.shard_id for spec in db.shard_map
            if len(db.shard_db(spec.shard_id).table("hle"))
        ]
        assert len(populated) > 1

        telemetry = hedc.telemetry_report()
        assert telemetry["shard"]["n_shards"] == 4
        assert telemetry["shard"]["routes"]["scatter"] >= 1
        import json as json_module

        metrics = hedc.web.handle(
            HttpRequest.get("/hedc/metrics?format=json"))
        assert metrics.status == 200
        assert json_module.loads(metrics.text)["shard"]["n_shards"] == 4
        debug = hedc.web.handle(HttpRequest.get("/hedc/debug"))
        assert debug.status == 200
        assert "shards (4" in debug.text

    def test_unsharded_deployment_reports_no_shard_section(self, populated_hedc):
        assert populated_hedc.telemetry_report()["shard"] is None


class TestScalingModel:
    def test_one_shard_matches_the_unsharded_model(self):
        from repro.evalmodel import simulate_browsing, simulate_sharded_browsing

        base = simulate_browsing(24, duration_s=120.0)
        one = simulate_sharded_browsing(24, n_shards=1, duration_s=120.0)
        assert one.throughput_rps == pytest.approx(base.throughput_rps, rel=1e-6)

    def test_throughput_grows_with_shards(self):
        from repro.evalmodel import simulate_sharded_browsing

        results = [
            simulate_sharded_browsing(96, n_middle_tier=5, n_shards=n,
                                      duration_s=120.0)
            for n in (1, 4)
        ]
        assert results[1].throughput_rps > 1.5 * results[0].throughput_rps

    def test_projection_reaches_millions_of_users(self):
        from repro.evalmodel import project_scaling, scaling_series

        series = scaling_series()
        capacities = [p.capacity_rps for p in series]
        assert capacities == sorted(capacities)
        assert series[-1].users_supported > 1_000_000
        # Replication multiplies shard capacity linearly.
        replicated = project_scaling(256, replicas_per_shard=4)
        assert replicated.users_supported > 4_000_000

    def test_fully_pruned_workload_scales_linearly(self):
        from repro.evalmodel import project_scaling

        one = project_scaling(1, pruned_fraction=1.0)
        four = project_scaling(4, pruned_fraction=1.0)
        assert four.capacity_rps == pytest.approx(4 * one.capacity_rps)

    def test_measured_pruned_fraction_feeds_the_projection(self):
        """Close the loop: the route counters of a real sharded workload
        calibrate the analytic model."""
        from repro.evalmodel import project_scaling

        _single, sharded = _fresh_pair()
        _seed_users(sharded)
        rows = _seed_events([sharded], n=40)
        rng = random.Random(11)
        for _ in range(30):
            t = rng.choice(rows)["start_time"]
            sharded.execute(Select(
                "hle", where=Between("start_time", t - 100, t + 100)))
            sharded.execute(Select("hle", order_by=[("peak_rate", "desc")],
                                   limit=5))
        routed = sharded.route_counts
        data_reads = routed["pruned"] + routed["scatter"]
        fraction = routed["pruned"] / data_reads
        assert 0.0 < fraction < 1.0
        projection = project_scaling(16, pruned_fraction=fraction)
        assert projection.capacity_rps > \
            project_scaling(1, pruned_fraction=fraction).capacity_rps

    def test_scatter_gather_resumes_on_the_slowest_branch(self):
        from repro.simkit import FcfsServer, Simulator, scatter_gather, spawn

        sim = Simulator()
        servers = [FcfsServer(sim, name=f"s{i}") for i in range(3)]
        servers[2].request(0.5)  # pre-load one branch with queueing delay
        finished = {}

        def fan_out():
            yield scatter_gather(servers, 0.1)
            finished["at"] = sim.now

        spawn(sim, fan_out())
        sim.run(until=2.0)
        assert finished["at"] == pytest.approx(0.6)

    def test_config_placement_classes(self):
        assert HEDC_SHARD_CONFIG.kind("hle") == "partitioned"
        assert HEDC_SHARD_CONFIG.kind("ana") == "co_partitioned"
        assert HEDC_SHARD_CONFIG.kind("admin_users") == "broadcast"
        assert HEDC_SHARD_CONFIG.joinable("ana", "hle")
        assert HEDC_SHARD_CONFIG.joinable("catalog_members", "catalogs")
        assert not HEDC_SHARD_CONFIG.joinable("hle", "raw_units")
