"""Tests for the unified caching core (`repro.cache`): policies, byte
budgets, TTL, stats, the registry, singleflight coalescing, and the
refactored session cache (including the historical cookie-map leak)."""

import threading
import time
from types import SimpleNamespace

import pytest

from repro.cache import (
    ArcPolicy,
    Cache,
    CacheStats,
    FifoPolicy,
    LruPolicy,
    SingleFlight,
    cache_report,
    iter_caches,
    make_policy,
)
from repro.dm.sessions import SessionCache
from repro.obs import Observability


class FakeClock:
    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


class TestLruEviction:
    def test_least_recently_used_goes_first(self):
        cache = Cache("t", max_entries=3)
        for key in ("a", "b", "c"):
            cache.put(key, key.upper())
        cache.get("a")                      # refresh: b is now the LRU
        cache.put("d", "D")
        assert "b" not in cache
        assert all(key in cache for key in ("a", "c", "d"))
        assert cache.stats.evictions == 1

    def test_byte_budget_evicts_until_under(self):
        cache = Cache("t", max_bytes=100, size_of=len)
        cache.put("a", b"x" * 60)
        cache.put("b", b"x" * 30)
        assert cache.size_bytes == 90
        cache.put("c", b"x" * 50)           # 140 > 100: evict a, then fits
        assert "a" not in cache
        assert cache.size_bytes == 80
        assert cache.stats.size_bytes == 80

    def test_overwrite_replaces_size_accounting(self):
        cache = Cache("t", size_of=len)
        cache.put("a", b"x" * 10)
        cache.put("a", b"x" * 3)
        assert cache.size_bytes == 3
        assert len(cache) == 1


class TestTtl:
    def test_expired_entry_is_a_miss(self):
        clock = FakeClock()
        cache = Cache("t", ttl_s=10.0, clock=clock)
        cache.put("a", 1)
        assert cache.get("a") == 1
        clock.advance(11.0)
        assert cache.get("a") is None
        assert cache.stats.misses == 1
        assert cache.stats.expirations == 1

    def test_per_put_ttl_overrides_default(self):
        clock = FakeClock()
        cache = Cache("t", ttl_s=10.0, clock=clock)
        cache.put("short", 1, ttl_s=1.0)
        cache.put("long", 2)
        clock.advance(5.0)
        assert cache.get("short") is None
        assert cache.get("long") == 2

    def test_get_stale_returns_expired_entries(self):
        clock = FakeClock()
        cache = Cache("t", ttl_s=1.0, clock=clock)
        cache.put("a", 1)
        clock.advance(2.0)
        assert cache.get_stale("a") == 1
        assert cache.stats.stale_hits == 1
        # ... but a counted get still drops and misses it.
        assert cache.get("a") is None


class TestRemovalCallbacks:
    def _record(self):
        events = []
        return events, lambda key, value, reason: events.append((key, reason))

    def test_every_removal_reason_fires_on_evict(self):
        clock = FakeClock()
        events, hook = self._record()
        cache = Cache("t", max_entries=2, ttl_s=None, on_evict=hook, clock=clock)
        cache.put("a", 1)
        cache.put("a", 2)                   # replaced
        cache.put("b", 1, ttl_s=1.0)
        clock.advance(2.0)
        cache.get("b")                      # expired
        cache.put("c", 1)
        cache.invalidate("c")               # invalidated
        cache.put("d", 1)
        cache.put("e", 1)                   # a,d,e over capacity: evict a
        cache.put("f", 1)                   # d,e,f over capacity: evict d
        cache.clear()                       # e, f cleared
        reasons = [reason for _key, reason in events]
        assert reasons.count("replaced") == 1
        assert reasons.count("expired") == 1
        assert reasons.count("invalidated") == 1
        assert reasons.count("evicted") == 2
        assert reasons.count("cleared") == 2


class TestGetOrLoad:
    def test_loads_once_then_serves(self):
        cache = Cache("t")
        calls = []
        for _round in range(3):
            value = cache.get_or_load("k", lambda: calls.append(1) or 42)
        assert value == 42 and len(calls) == 1
        assert cache.stats.hits == 2 and cache.stats.misses == 1

    def test_concurrent_loads_coalesce(self):
        cache = Cache("t")
        gate = threading.Event()
        calls = []

        def slow_loader():
            gate.wait(timeout=10)
            calls.append(1)
            return "v"

        results = []
        threads = [
            threading.Thread(target=lambda: results.append(
                cache.get_or_load("k", slow_loader)))
            for _ in range(8)
        ]
        for thread in threads:
            thread.start()
        time.sleep(0.05)
        gate.set()
        for thread in threads:
            thread.join(timeout=10)
        assert results == ["v"] * 8
        assert len(calls) == 1
        assert cache.stats.coalesced >= 1


class TestArcPolicy:
    def test_requires_capacity(self):
        with pytest.raises(ValueError):
            make_policy("arc", None)
        assert isinstance(make_policy("arc", 4), ArcPolicy)
        assert isinstance(make_policy("lru", None), LruPolicy)
        assert isinstance(make_policy("ttl", None), FifoPolicy)
        with pytest.raises(ValueError):
            make_policy("magic", 4)

    def test_scan_resistance(self):
        """A one-pass scan must not flush the frequently-reused working
        set — the property LRU lacks and ARC exists for."""
        capacity = 8
        cache = Cache("t", max_entries=capacity, policy="arc")
        working_set = [f"hot{i}" for i in range(4)]
        for key in working_set:
            cache.put(key, key)
        for _round in range(3):
            for key in working_set:
                assert cache.get(key) == key    # promote into T2
        for index in range(64):                 # the scan
            cache.put(f"scan{index}", index)
        survivors = [key for key in working_set if key in cache]
        assert len(survivors) == len(working_set)

    def test_ghost_hit_adapts_and_promotes(self):
        policy = ArcPolicy(capacity=2)
        cache = Cache("t", max_entries=2, policy=policy)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)                   # evicts a -> ghost list B1
        assert "a" not in cache
        cache.put("a", 1)                   # ghost hit: adapts p, lands in T2
        assert policy.p > 0
        assert "a" in cache


class TestStatsAndObs:
    def test_stats_mirrored_into_obs_registry(self):
        obs = Observability()
        cache = Cache("mirrored", max_entries=2, obs=obs)
        cache.put("a", 1)
        cache.get("a")
        cache.get("zzz")
        registry = obs.registry
        assert registry.value("cache.hits", cache="mirrored") == 1
        assert registry.value("cache.misses", cache="mirrored") == 1
        assert registry.value("cache.puts", cache="mirrored") == 1
        assert registry.value("cache.entries", cache="mirrored") == 1

    def test_hit_rate_and_snapshot(self):
        stats = CacheStats("s")
        stats.record_hit(3)
        stats.record_miss()
        assert stats.hit_rate == pytest.approx(0.75)
        assert stats.hit_ratio == pytest.approx(0.75)
        snapshot = stats.snapshot()
        assert snapshot["hits"] == 3 and snapshot["hit_ratio"] == pytest.approx(0.75)

    def test_cache_report_filters_by_obs_hub(self):
        ours = Observability()
        theirs = Observability()
        mine = Cache("report.mine", obs=ours)
        other = Cache("report.other", obs=theirs)
        mine.put("a", 1)
        mine.get("a")
        other.put("b", 2)
        report = cache_report(ours)
        assert "report.mine" in report
        assert "report.other" not in report
        assert report["report.mine"]["hits"] == 1
        assert {cache.name for cache in iter_caches(ours)} == {"report.mine"}


class TestSingleFlight:
    def test_concurrent_identical_calls_run_once(self):
        flight = SingleFlight()
        gate = threading.Event()
        executions = []
        results = []

        def work():
            gate.wait(timeout=10)
            executions.append(1)
            return "product"

        def call():
            results.append(flight.do("fp", work))

        threads = [threading.Thread(target=call) for _ in range(10)]
        for thread in threads:
            thread.start()
        time.sleep(0.05)
        gate.set()
        for thread in threads:
            thread.join(timeout=10)
        assert len(executions) == 1
        assert [value for value, _leading in results] == ["product"] * 10
        assert sum(1 for _value, leading in results if leading) == 1
        assert flight.coalesced == 9

    def test_leader_error_propagates_to_followers(self):
        flight = SingleFlight()
        gate = threading.Event()
        errors = []

        def failing():
            gate.wait(timeout=10)
            raise RuntimeError("boom")

        def call():
            try:
                flight.do("fp", failing)
            except RuntimeError as exc:
                errors.append(str(exc))

        threads = [threading.Thread(target=call) for _ in range(4)]
        for thread in threads:
            thread.start()
        time.sleep(0.05)
        gate.set()
        for thread in threads:
            thread.join(timeout=10)
        assert errors == ["boom"] * 4

    def test_sequential_calls_are_fresh_flights(self):
        flight = SingleFlight()
        first, leading1 = flight.do("k", lambda: 1)
        second, leading2 = flight.do("k", lambda: 2)
        assert (first, leading1) == (1, True)
        assert (second, leading2) == (2, True)
        assert not flight.in_flight("k")

    def test_spans_propagate_through_coalesced_requests(self):
        """Followers' trace trees must reference the one executing span,
        so an operator inspecting a coalesced request's trace can jump to
        the span that actually did the work."""
        obs = Observability(enabled=True)
        flight = SingleFlight(obs=obs)
        gate = threading.Event()

        def work():
            gate.wait(timeout=10)
            return "product"

        def call(name):
            with obs.tracer.span(name):
                flight.do("fp", work)

        leader_thread = threading.Thread(target=call, args=("leader",))
        leader_thread.start()
        time.sleep(0.05)            # leader is in flight before followers join
        follower_threads = [
            threading.Thread(target=call, args=(f"follower{index}",))
            for index in range(3)
        ]
        for thread in follower_threads:
            thread.start()
        time.sleep(0.05)
        gate.set()
        for thread in [leader_thread, *follower_threads]:
            thread.join(timeout=10)

        roots = obs.tracer.finished_spans()
        leader_root = next(span for span in roots if span.name == "leader")
        followers = [span for span in roots if span.name.startswith("follower")]
        assert len(followers) == 3
        for span in followers:
            assert span.tags["coalesced_with_span"] == leader_root.span_id
            assert span.tags["coalesced_with_trace"] == leader_root.trace_id
        assert "coalesced_with_span" not in leader_root.tags

    def test_no_span_tags_without_obs_or_tracing(self):
        flight = SingleFlight()          # no hub attached
        assert flight.do("k", lambda: 1) == (1, True)
        disabled = SingleFlight(obs=Observability())
        assert disabled.do("k", lambda: 2) == (2, True)


def _user(user_id: int):
    return SimpleNamespace(user_id=user_id)


class TestSessionCacheOnCore:
    def test_cookie_map_cannot_leak_on_overwrite_churn(self):
        """The historical leak: every create() for the same (user, kind)
        left the old cookie in ``_by_cookie`` forever."""
        sessions = SessionCache(max_users=4)
        alice = _user(1)
        for _round in range(50):
            sessions.create(alice, "hle", "10.0.0.1")
        assert sessions.size == 1
        assert len(sessions._by_cookie) == 1

    def test_cookie_map_follows_user_eviction(self):
        sessions = SessionCache(max_users=2)
        for user_id in range(5):
            sessions.create(_user(user_id), "hle", "10.0.0.1")
        assert len(sessions._by_cookie) == sessions.size <= 2

    def test_expired_session_leaves_cookie_map(self):
        sessions = SessionCache(ttl_s=0.0)
        session = sessions.create(_user(1), "hle", "10.0.0.1")
        time.sleep(0.01)
        assert sessions.by_cookie(session.cookie) is None
        assert session.cookie not in sessions._by_cookie

    def test_prune_expired_sweeps_cookie_map(self):
        sessions = SessionCache(ttl_s=0.0)
        for user_id in range(3):
            sessions.create(_user(user_id), "ana", "10.0.0.1")
        time.sleep(0.01)
        assert sessions.prune_expired() == 3
        assert sessions.size == 0
        assert sessions._by_cookie == {}

    def test_lookup_hit_and_miss_semantics_preserved(self):
        sessions = SessionCache()
        alice = _user(1)
        session = sessions.create(alice, "hle", "10.0.0.1")
        hit = sessions.lookup(alice, "hle", "10.0.0.1", session.cookie)
        assert hit is session
        assert sessions.hits == 1
        # Same resident entry, wrong IP: a semantic miss.
        assert sessions.lookup(alice, "hle", "10.9.9.9", session.cookie) is None
        assert sessions.misses == 1
        assert sessions.hit_ratio == pytest.approx(0.5)

    def test_unified_stats_visible_in_cache_report(self):
        obs = Observability()
        sessions = SessionCache(obs=obs)
        alice = _user(1)
        session = sessions.create(alice, "hle", "10.0.0.1")
        sessions.lookup(alice, "hle", "10.0.0.1", session.cookie)
        report = cache_report(obs)
        assert report["dm.sessions"]["hits"] == 1
        assert obs.registry.value("dm.sessions.hits") == 1
