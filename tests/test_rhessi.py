"""Tests for the synthetic RHESSI substrate."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.rhessi import (
    Calibration,
    CalibrationHistory,
    EventDetector,
    GammaRayBurst,
    N_COLLIMATORS,
    PhotonList,
    QuietSun,
    SaaTransit,
    SolarFlare,
    TelemetryGenerator,
    band_index,
    detectors,
    merge,
    package_units,
    quiet_periods,
    standard_day_plan,
)
from repro.rhessi.telemetry import ObservationPlan


class TestInstrument:
    def test_nine_detectors(self):
        dets = detectors()
        assert len(dets) == N_COLLIMATORS == 9
        assert dets[0].name == "G1"
        assert dets[0].pitch_arcsec < dets[-1].pitch_arcsec

    def test_band_index_covers_range(self):
        assert band_index(3.0) == 0
        assert band_index(10.0) == 1
        assert band_index(19_999.0) == 8
        assert band_index(1e9) == 8  # clamps at the top band


class TestPhotonList:
    def test_sorted_on_construction(self):
        photons = PhotonList(np.array([3.0, 1.0, 2.0]), np.array([5, 6, 7]),
                             np.array([1, 2, 3]))
        assert list(photons.times) == [1.0, 2.0, 3.0]
        assert list(photons.energies) == [6.0, 7.0, 5.0]

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            PhotonList(np.zeros(2), np.zeros(3), np.zeros(2))

    def test_time_selection_half_open(self):
        photons = PhotonList(np.arange(10.0), np.ones(10), np.ones(10))
        window = photons.select_time(2.0, 5.0)
        assert list(window.times) == [2.0, 3.0, 4.0]

    def test_energy_selection(self):
        photons = PhotonList(np.arange(5.0), np.array([3.0, 10.0, 30.0, 100.0, 5000.0]),
                             np.ones(5))
        band = photons.select_energy(10.0, 100.0)
        assert len(band) == 2

    def test_detector_selection(self):
        photons = PhotonList(np.arange(6.0), np.ones(6),
                             np.array([1, 2, 1, 3, 1, 2]))
        assert len(photons.select_detector(1)) == 3

    def test_bin_counts_conserves_photons(self):
        rng = np.random.default_rng(3)
        photons = PhotonList(np.sort(rng.uniform(0, 100, 1000)), np.ones(1000),
                             np.ones(1000))
        _edges, counts = photons.bin_counts(4.0)
        assert counts.sum() == 1000

    def test_spectrum_conserves_in_range_photons(self):
        photons = PhotonList(np.arange(4.0), np.array([5.0, 50.0, 500.0, 5000.0]),
                             np.ones(4))
        _edges, counts = photons.spectrum(16)
        assert counts.sum() == 4

    def test_fits_round_trip(self):
        photons = PhotonList(
            np.linspace(0, 10, 50),
            np.random.default_rng(1).uniform(3, 100, 50).astype(np.float32),
            np.random.default_rng(2).integers(1, 10, 50).astype(np.int16),
        )
        restored = PhotonList.from_fits(photons.to_fits())
        assert np.allclose(restored.times, photons.times)
        assert np.allclose(restored.energies, photons.energies)
        assert np.array_equal(restored.detectors, photons.detectors)

    def test_validate_rejects_bad_detector(self):
        photons = PhotonList(np.array([0.0]), np.array([5.0]), np.array([12]))
        with pytest.raises(ValueError):
            photons.validate()

    def test_merge(self):
        a = PhotonList(np.array([1.0, 3.0]), np.ones(2), np.ones(2))
        b = PhotonList(np.array([2.0]), np.ones(1), np.ones(1))
        merged = merge([a, b])
        assert list(merged.times) == [1.0, 2.0, 3.0]

    def test_empty_photon_list(self):
        empty = PhotonList(np.array([]), np.array([]), np.array([]))
        assert len(empty) == 0
        assert empty.duration == 0.0
        empty.validate()


class TestPhenomena:
    def test_flare_rate_peaks_then_decays(self):
        flare = SolarFlare(start=100.0, duration=100.0, goes_class="M", peak_rate=10.0)
        t = np.linspace(0, 300, 3001)
        rate = flare.rate(t)
        assert rate[t < 100].max() == 0.0
        assert rate[t > 210].max() == pytest.approx(0.0, abs=1e-6)
        peak_time = t[np.argmax(rate)]
        assert 110 < peak_time < 120  # rise = 15% of duration

    def test_goes_class_scales_peak(self):
        small = SolarFlare(start=0, duration=100, goes_class="B", peak_rate=10.0)
        large = SolarFlare(start=0, duration=100, goes_class="X", peak_rate=10.0)
        assert large.scaled_peak_rate == 64 * small.scaled_peak_rate

    def test_unknown_goes_class_rejected(self):
        with pytest.raises(ValueError):
            SolarFlare(start=0, duration=10, goes_class="Z")

    def test_grb_spectrum_harder_than_flare(self):
        rng = np.random.default_rng(0)
        flare = SolarFlare(start=0, duration=10)
        burst = GammaRayBurst(start=0, duration=10)
        assert burst.draw_energies(rng, 4000).mean() > 3 * flare.draw_energies(rng, 4000).mean()

    def test_saa_blanks_rate(self):
        saa = SaaTransit(start=10.0, duration=5.0)
        t = np.linspace(0, 20, 21)
        assert saa.rate(t).max() == 0.0
        assert saa.blocks(t).sum() == 5

    def test_quiet_sun_is_low_and_positive(self):
        quiet = QuietSun(start=0, duration=100, level=20.0)
        rate = quiet.rate(np.linspace(0, 100, 101)[:-1])
        assert 0 < rate.min() and rate.max() < 25


class TestTelemetryGenerator:
    def test_photon_count_tracks_rate_integral(self):
        plan = ObservationPlan(0.0, 200.0, background_rate=100.0)
        photons = TelemetryGenerator(plan, seed=1).generate()
        assert len(photons) == pytest.approx(20_000, rel=0.05)

    def test_flare_region_is_denser(self, photons_small):
        # The fixture's flare fills most of the window, so the median bin
        # is already elevated; the peak must still clearly stand out.
        _edges, counts = photons_small.bin_counts(4.0)
        assert counts.max() > 3 * np.median(counts)

    def test_saa_region_is_empty(self):
        plan = ObservationPlan(0.0, 300.0, background_rate=50.0)
        plan.add(SaaTransit(start=100.0, duration=50.0))
        photons = TelemetryGenerator(plan, seed=2).generate()
        assert len(photons.select_time(101.0, 149.0)) == 0

    def test_all_detectors_hit(self, photons_small):
        assert set(np.unique(photons_small.detectors)) == set(range(1, 10))

    def test_generation_is_deterministic(self):
        plan = standard_day_plan(duration=60.0, seed=9, n_flares=1, n_bursts=0, n_saa=0)
        a = TelemetryGenerator(plan, seed=5).generate()
        b = TelemetryGenerator(plan, seed=5).generate()
        assert np.array_equal(a.times, b.times)
        assert np.array_equal(a.energies, b.energies)

    def test_plan_rejects_out_of_window_phenomena(self):
        plan = ObservationPlan(0.0, 100.0)
        with pytest.raises(ValueError):
            plan.add(SolarFlare(start=90.0, duration=20.0))

    def test_standard_day_plan_fits_any_duration(self):
        for duration in (120.0, 333.0, 3600.0):
            plan = standard_day_plan(duration=duration, seed=1)
            for phenomenon in plan.phenomena:
                assert phenomenon.end <= plan.end


class TestPackaging:
    def test_units_partition_photons_completely(self, photons_small, tmp_path):
        units = package_units(photons_small, tmp_path, unit_target_photons=5000)
        assert sum(unit.n_photons for unit in units) == len(photons_small)
        assert len(units) == int(np.ceil(len(photons_small) / 5000))

    def test_units_are_time_ordered_and_disjoint(self, photons_small, tmp_path):
        units = package_units(photons_small, tmp_path, unit_target_photons=5000)
        for previous, current in zip(units, units[1:]):
            assert previous.end <= current.start + 1e-6

    def test_unit_files_decode_back(self, photons_small, tmp_path):
        from repro.fits import read

        units = package_units(photons_small, tmp_path, unit_target_photons=100_000)
        restored = PhotonList.from_fits(read(units[0].path))
        assert len(restored) == units[0].n_photons

    def test_empty_photons_yield_no_units(self, tmp_path):
        empty = PhotonList(np.array([]), np.array([]), np.array([]))
        assert package_units(empty, tmp_path) == []

    def test_unit_header_carries_calibration_version(self, photons_small, tmp_path):
        from repro.fits import read

        units = package_units(photons_small, tmp_path, unit_target_photons=100_000,
                              calibration_version=3)
        header = read(units[0].path).primary.header
        assert header["CALVER"] == 3


class TestDetection:
    def test_detects_flare_and_burst_and_gap(self, photons_mixed):
        events = EventDetector().detect(photons_mixed)
        kinds = {event.kind for event in events}
        assert "flare" in kinds
        assert "gamma_ray_burst" in kinds
        assert "data_gap" in kinds

    def test_detection_windows_cover_true_events(self, photons_mixed):
        events = [e for e in EventDetector().detect(photons_mixed) if e.kind != "data_gap"]
        # The mixed plan has flares at known slots; every detection must
        # contain its peak and have positive significance.
        for event in events:
            assert event.start <= event.peak_time <= event.end
            assert event.significance > 5.0
            assert event.total_counts > 0

    def test_quiet_stream_has_no_detections(self):
        plan = ObservationPlan(0.0, 400.0, background_rate=50.0)
        photons = TelemetryGenerator(plan, seed=8).generate()
        events = EventDetector().detect(photons)
        assert [event for event in events if event.kind != "data_gap"] == []

    def test_empty_stream(self):
        empty = PhotonList(np.array([]), np.array([]), np.array([]))
        assert EventDetector().detect(empty) == []

    def test_quiet_periods_between_events(self, photons_mixed):
        detector = EventDetector()
        events = detector.detect(photons_mixed)
        periods = quiet_periods(photons_mixed, events, min_duration_s=30.0)
        assert periods
        for period in periods:
            for event in events:
                if event.kind == "data_gap":
                    continue
                # No overlap with detected events.
                assert period.end <= event.start or period.start >= event.end

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            EventDetector(bin_width_s=0)
        with pytest.raises(ValueError):
            EventDetector(threshold_sigma=-1)


class TestCalibration:
    def test_identity_calibration_is_noop(self, photons_small):
        calibrated = Calibration.identity().apply(photons_small)
        assert np.allclose(calibrated.energies, photons_small.energies)

    def test_gain_scales_energy(self, photons_small):
        calibration = Calibration(2, gains=(1.1,) * 9, offsets=(0.0,) * 9)
        calibrated = calibration.apply(photons_small)
        assert np.allclose(calibrated.energies, photons_small.energies * 1.1, rtol=1e-5)

    def test_wrong_arity_rejected(self):
        with pytest.raises(ValueError):
            Calibration(2, gains=(1.0,) * 3, offsets=(0.0,) * 3)
        with pytest.raises(ValueError):
            Calibration(2, gains=(0.0,) * 9, offsets=(0.0,) * 9)

    def test_composed_correction_equals_direct(self, photons_small):
        v2 = Calibration(2, gains=(1.05,) * 9, offsets=(0.3,) * 9)
        v3 = Calibration(3, gains=(0.98,) * 9, offsets=(-0.1,) * 9)
        direct = v3.apply(photons_small)
        via_v2 = v3.compose_correction(v2).apply(v2.apply(photons_small))
        assert np.allclose(direct.energies, via_v2.energies, rtol=1e-5)

    def test_history_versions_and_lineage(self, photons_small):
        history = CalibrationHistory()
        assert history.current_version == 1
        history.publish((1.02,) * 9, (0.5,) * 9, note="drift fix")
        assert history.current_version == 2
        corrected, record = history.recalibrate(photons_small, "unit-x", from_version=1)
        assert record.from_version == 1 and record.to_version == 2
        assert record.n_photons == len(photons_small)
        assert history.records == [record]
        assert not np.allclose(corrected.energies, photons_small.energies)

    def test_unknown_version_rejected(self):
        with pytest.raises(KeyError):
            CalibrationHistory().get(99)

    @given(gain=st.floats(min_value=0.5, max_value=2.0),
           offset=st.floats(min_value=-2.0, max_value=2.0))
    @settings(max_examples=30, deadline=None)
    def test_correction_round_trip_property(self, gain, offset):
        """Correcting v1->v2 then v2->v1 recovers the original energies."""
        base = PhotonList(
            np.arange(20.0),
            np.linspace(5, 500, 20).astype(np.float32),
            np.tile(np.arange(1, 5), 5).astype(np.int16),
        )
        v1 = Calibration.identity()
        v2 = Calibration(2, gains=(gain,) * 9, offsets=(offset,) * 9)
        forward = v2.compose_correction(v1).apply(base)
        backward = v1.compose_correction(v2).apply(forward)
        assert np.allclose(backward.energies, base.energies, rtol=1e-4, atol=1e-3)
